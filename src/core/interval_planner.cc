#include "core/interval_planner.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"

namespace sentinel::core {

IntervalPlanner::IntervalPlanner(PlannerInputs in) : in_(std::move(in))
{
    SENTINEL_ASSERT(in_.db != nullptr, "planner needs a profile");
    SENTINEL_ASSERT(in_.fast_capacity > 0, "planner needs fast capacity");
    SENTINEL_ASSERT(in_.promote_bw > 0.0, "planner needs migration BW");
    SENTINEL_ASSERT(in_.layer_time_scale.empty() ||
                        static_cast<int>(in_.layer_time_scale.size()) ==
                            in_.db->numLayers(),
                    "layer_time_scale must cover every layer");
}

std::uint64_t
IntervalPlanner::migrationBudget(std::uint64_t rs_bytes) const
{
    if (in_.fast_capacity > rs_bytes)
        return in_.fast_capacity - rs_bytes;
    if (!warned_degraded_) {
        warned_degraded_ = true;
        SENTINEL_WARN("reservation %llu >= fast capacity %llu: no "
                      "migration budget; degrading to per-layer "
                      "migration with slow-memory overflow",
                      static_cast<unsigned long long>(rs_bytes),
                      static_cast<unsigned long long>(in_.fast_capacity));
    }
    return 0;
}

Tick
IntervalPlanner::estimatedLayerTime(int layer) const
{
    // Profiled on the slow tier; project the memory component to fast
    // (the steady state Sentinel aims for).  Dispatch overheads are the
    // remainder of the measured duration.
    const prof::LayerProfile &lp = in_.db->layer(layer);
    double ratio = in_.slow_read_bw > 0.0
                       ? in_.fast_read_bw / in_.slow_read_bw
                       : 1.0;
    Tick mem_fast = static_cast<Tick>(
        static_cast<double>(lp.mem) / std::max(1.0, ratio));
    Tick bound = std::max(lp.compute, mem_fast);
    Tick overheads = lp.duration - std::max(lp.compute, lp.mem);
    Tick t = bound + std::max<Tick>(0, overheads);
    if (!in_.layer_time_scale.empty())
        t = static_cast<Tick>(
            static_cast<double>(t) *
            in_.layer_time_scale[static_cast<std::size_t>(layer)]);
    return t;
}

std::uint64_t
IntervalPlanner::prefetchBytes(int mil, int interval) const
{
    const prof::ProfileDatabase &db = *in_.db;
    int L = db.numLayers();
    // Wrap: the last interval prefetches for the next step's first.
    int next_begin = (interval + 1) * mil;
    int k1_begin = next_begin >= L ? 0 : next_begin;
    int k1_end = std::min(k1_begin + mil, L);
    int k0_begin = interval * mil;
    int k0_end = std::min(k0_begin + mil, L);

    std::uint64_t total = 0;
    for (df::TensorId id : db.longLivedAccessedIn(k1_begin, k1_end)) {
        const prof::TensorProfile &t = db.tensor(id);
        // Already resident in fast memory if the current interval also
        // touches it; not yet allocated if it is born inside the next
        // interval.
        if (db.accessedIn(id, k0_begin, k0_end))
            continue;
        if (!t.preallocated && t.first_layer >= k1_begin &&
            t.first_layer < k1_end)
            continue;
        total += t.bytes;
    }
    return total;
}

std::uint64_t
IntervalPlanner::workingSetBytes(int mil, int interval) const
{
    const prof::ProfileDatabase &db = *in_.db;
    int L = db.numLayers();
    int cur_begin = interval * mil;
    int cur_end = std::min(cur_begin + mil, L);
    int next_begin = (interval + 1) * mil >= L ? 0 : (interval + 1) * mil;
    int next_end = std::min(next_begin + mil, L);

    std::uint64_t total = 0;
    for (const prof::TensorProfile &t : db.tensors()) {
        if (t.short_lived)
            continue;
        if (db.accessedIn(t.id, cur_begin, cur_end) ||
            db.accessedIn(t.id, next_begin, next_end))
            total += t.bytes;
    }
    return total;
}

Tick
IntervalPlanner::intervalTime(int mil, int interval) const
{
    int L = in_.db->numLayers();
    int begin = interval * mil;
    int end = std::min(begin + mil, L);
    Tick total = 0;
    for (int l = begin; l < end; ++l)
        total += estimatedLayerTime(l);
    return total;
}

std::vector<int>
IntervalPlanner::dynamicBoundaries(std::uint64_t rs_bytes) const
{
    const prof::ProfileDatabase &db = *in_.db;
    int L = db.numLayers();
    std::uint64_t budget = migrationBudget(rs_bytes);
    if (budget == 0) {
        // Same degradation as plan(): per-layer migration, overflow in
        // slow memory.  (Previously this path silently pretended the
        // whole fast tier was available, so dynamic intervals grew as
        // if the reservation cost nothing.)
        std::vector<int> starts(static_cast<std::size_t>(L));
        for (int l = 0; l < L; ++l)
            starts[static_cast<std::size_t>(l)] = l;
        return starts;
    }

    // Bytes whose use episode begins at each layer (they must have
    // been prefetched by then).
    std::vector<std::uint64_t> arrivals(static_cast<std::size_t>(L), 0);
    for (const prof::TensorProfile &t : db.tensors()) {
        if (t.short_lived)
            continue;
        int prev = -2;
        for (int a : t.access_layers) {
            if (a > prev + 1)
                arrivals[static_cast<std::size_t>(a)] += t.bytes;
            prev = a;
        }
    }

    std::vector<int> starts{ 0 };
    std::uint64_t window = 0;
    constexpr int kMaxLen = 32;
    for (int l = 1; l < L; ++l) {
        window += arrivals[static_cast<std::size_t>(l)];
        bool too_big = window > budget * 4 / 5;
        bool too_long = l - starts.back() >= kMaxLen;
        if (too_big || too_long) {
            starts.push_back(l);
            window = 0;
        }
    }
    return starts;
}

PlannerResult
IntervalPlanner::plan(std::uint64_t rs_cap) const
{
    const prof::ProfileDatabase &db = *in_.db;
    int L = db.numLayers();

    PlannerResult result;
    // RS is essentially MIL-independent (short-lived tensors never span
    // layers — Sec. IV-D observes only small variance), but it must
    // leave room for migration: cap it.
    result.rs_bytes = std::min(db.shortLivedPeakBytes(), rs_cap);
    std::uint64_t budget = migrationBudget(result.rs_bytes);

    int max_mil = std::max(1, L / 2);
    result.candidates.reserve(static_cast<std::size_t>(max_mil));

    for (int mil = 1; mil <= max_mil; ++mil) {
        IntervalChoice c;
        c.mil = mil;
        int K = numIntervals(L, mil);

        Tick exposed = 0;
        std::uint64_t worst_prefetch = 0;
        std::uint64_t worst_ws = 0;
        Tick total_time = 0;
        Tick margin = 0;
        bool first_interval = true;
        for (int k = 0; k < K; ++k) {
            std::uint64_t pf = prefetchBytes(mil, k);
            worst_prefetch = std::max(worst_prefetch, pf);
            std::uint64_t ws = workingSetBytes(mil, k);
            worst_ws = std::max(worst_ws, ws);
            Tick t = intervalTime(mil, k);
            total_time += t;
            Tick migration = transferTime(pf, in_.promote_bw);
            if (migration > t)
                exposed += migration - t;
            Tick m = t - migration;
            margin = first_interval ? m : std::min(margin, m);
            first_interval = false;
        }
        // Capacity penalty, once per step: when the worst interval's
        // resident set cannot fit into S - RS, the overflow lives in
        // slow memory and each of its (roughly two) per-step touches
        // pays the slow tier.  This is what makes overly long
        // intervals lose in Fig. 5 even though their literal Eq. 2
        // value looks fine.
        if (budget > 0 && worst_ws > budget) {
            exposed +=
                2 * transferTime(worst_ws - budget, in_.slow_read_bw);
        }
        c.max_prefetch = worst_prefetch;
        c.max_working_set = worst_ws;
        c.est_step_time = total_time + exposed;
        // Eq. 1 (paper-literal): the volume migrated for any interval
        // must fit into S - RS.  The eager mid-interval demotion keeps
        // the resident set in check (Case-2 avoidance), so the union
        // working set is a diagnostic, not a constraint.
        c.feasible = budget > 0 && worst_prefetch < budget;
        c.est_exposed = exposed;
        c.overlap_margin = margin;
        // Literal Eq. 2: worst-case fill time minus average interval
        // compute time (reported for comparison; the per-interval
        // estimate above is what we optimize).
        double fill_time =
            static_cast<double>(budget) / in_.promote_bw;
        double avg_interval =
            toSeconds(total_time) / static_cast<double>(K);
        c.eq2_objective = fill_time - avg_interval;
        result.candidates.push_back(c);
    }

    // Pick: feasible with minimal estimated exposure; among exposure
    // ties (typically all zero) prefer the SMALLEST MIL whose worst
    // interval still has comfortable overlap headroom (25% of the
    // interval).  Small intervals adapt better (finer demotion, less
    // space pressure); larger ones only help when migration needs the
    // extra window — this is what gives Fig. 5 its interior optimum.
    const IntervalChoice *best = nullptr;
    auto comfortable = [&](const IntervalChoice &c) {
        Tick avg_interval = intervalTime(c.mil, 0);
        return c.est_exposed == 0 && c.overlap_margin * 4 >= avg_interval;
    };
    for (const IntervalChoice &c : result.candidates) {
        if (!c.feasible)
            continue;
        if (best == nullptr) {
            best = &c;
            continue;
        }
        if (comfortable(*best))
            break; // smallest comfortable MIL found
        if (c.est_exposed < best->est_exposed ||
            (c.est_exposed == best->est_exposed &&
             c.overlap_margin > best->overlap_margin) ||
            comfortable(c)) {
            best = &c;
        }
    }
    if (best == nullptr) {
        // No MIL satisfies Eq. 1 (fast memory below the paper's lower
        // bound).  Degrade to per-layer migration; the runtime will
        // leave what does not fit in slow memory.
        best = &result.candidates.front();
        SENTINEL_WARN("no feasible migration interval for S=%llu RS=%llu "
                      "(below the fast-memory lower bound); degrading",
                      static_cast<unsigned long long>(in_.fast_capacity),
                      static_cast<unsigned long long>(result.rs_bytes));
    }
    result.best = *best;
    return result;
}

} // namespace sentinel::core
