#include "core/runtime.hh"

#include "common/logging.hh"

namespace sentinel::core {

RuntimeConfig
RuntimeConfig::optane(std::uint64_t fast_bytes)
{
    RuntimeConfig cfg;
    // DDR4-2666, 6 channels per socket.
    cfg.fast = { "dram", fast_bytes, 76e9, 50e9, 85, 90 };
    // Optane DC PMM, 6 DIMMs, App-Direct mode.
    cfg.slow = { "pmm", 512ull << 30, 30e9, 10e9, 300, 120 };
    // move_pages() through two helper threads.
    cfg.migration = { 8.0e9, 6.0e9, 2 * kUsec };
    // Dual-socket Cascade Lake; sustained FP32 throughput of TF CPU
    // training kernels (far below peak AVX-512).
    cfg.exec = { 0.6e12, 2 * kUsec };
    cfg.profiler = {};
    cfg.sentinel = {};
    return cfg;
}

RuntimeConfig
RuntimeConfig::cxl(std::uint64_t fast_bytes)
{
    RuntimeConfig cfg = optane(fast_bytes);
    // CXL 2.0 attached DDR: near-DRAM bandwidth, ~2-3x the latency.
    cfg.slow = { "cxl", 512ull << 30, 48e9, 40e9, 210, 180 };
    cfg.migration = { 12.0e9, 10.0e9, 2 * kUsec };
    return cfg;
}

RuntimeConfig
RuntimeConfig::gpu(std::uint64_t hbm_bytes)
{
    RuntimeConfig cfg;
    // V100: HBM2.
    cfg.fast = { "hbm", hbm_bytes, 800e9, 750e9, 300, 300 };
    // Host memory reached from the GPU over PCIe 3.0 x16.
    cfg.slow = { "host", 512ull << 30, 11e9, 11e9, 1 * kUsec, 1 * kUsec };
    // cudaMemPrefetchAsync over PCIe, one channel per direction.
    cfg.migration = { 11e9, 11e9, 10 * kUsec };
    // Sustained FP32 throughput + kernel-launch overhead.
    cfg.exec = { 10.0e12, 8 * kUsec };
    cfg.profiler.gpu_pinned = true;
    cfg.profiler.gpu_link_bw = 11e9;
    cfg.sentinel.gpu_mode = true;
    return cfg;
}

Runtime::Runtime(df::Graph graph, RuntimeConfig cfg)
    : graph_(std::move(graph)), cfg_(std::move(cfg))
{
    SENTINEL_ASSERT(graph_.finalized(), "graph must be finalized");
    if (cfg_.telemetry.enabled)
        telemetry_ = std::make_unique<telemetry::Session>(cfg_.telemetry);
    hm_ = std::make_unique<mem::HeterogeneousMemory>(cfg_.fast, cfg_.slow,
                                                     cfg_.migration);
    hm_->setTelemetry(telemetry_.get());
}

void
Runtime::ensureProfiled()
{
    if (profile_)
        return;
    // Profiling runs on its own memory system snapshot: the real
    // implementation profiles the 11th step in place, but the page-
    // aligned profiling allocation must not linger in the training HM.
    mem::HeterogeneousMemory profiling_hm(cfg_.fast, cfg_.slow,
                                          cfg_.migration);
    prof::Profiler profiler(cfg_.profiler);
    profile_ = profiler.profile(graph_, profiling_hm, cfg_.exec);
}

void
Runtime::ensureExecutor()
{
    ensureProfiled();
    if (executor_)
        return;
    policy_ = std::make_unique<SentinelPolicy>(profile_->db,
                                               cfg_.sentinel);
    policy_->setTelemetry(telemetry_.get());
    executor_ = std::make_unique<df::Executor>(graph_, *hm_, cfg_.exec,
                                               *policy_);
    executor_->setTelemetry(telemetry_.get());
}

const prof::ProfileResult &
Runtime::profileResult()
{
    ensureProfiled();
    return *profile_;
}

std::vector<df::StepStats>
Runtime::train(int steps)
{
    ensureExecutor();
    return executor_->run(steps);
}

const SentinelPolicy &
Runtime::policy() const
{
    SENTINEL_ASSERT(policy_ != nullptr, "train() has not run yet");
    return *policy_;
}

} // namespace sentinel::core
