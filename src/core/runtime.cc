#include "core/runtime.hh"

#include <cmath>

#include "common/logging.hh"

namespace sentinel::core {

std::vector<mem::TierParams>
RuntimeConfig::tierChain() const
{
    std::vector<mem::TierParams> chain;
    chain.push_back(fast);
    if (single_tier) {
        SENTINEL_ASSERT(mids.empty(),
                        "single_tier excludes middle tiers");
        return chain;
    }
    for (const mem::TierParams &t : mids)
        chain.push_back(t);
    chain.push_back(slow);
    return chain;
}

std::vector<mem::MigrationParams>
RuntimeConfig::linkChain() const
{
    if (single_tier)
        return {};
    if (!links.empty()) {
        SENTINEL_ASSERT(links.size() == mids.size() + 1,
                        "links must cover every tier pair (%zu links "
                        "for %zu tiers)",
                        links.size(), mids.size() + 2);
        return links;
    }
    return std::vector<mem::MigrationParams>(mids.size() + 1, migration);
}

void
RuntimeConfig::insertMidTiers(int count, std::uint64_t bytes_each,
                              double bw_override)
{
    SENTINEL_ASSERT(count > 0, "need at least one middle tier");
    SENTINEL_ASSERT(!single_tier && mids.empty() && links.empty(),
                    "insertMidTiers() wants a pristine two-tier config");
    auto lerp = [](double a, double b, double w) {
        // Geometric interpolation: tier parameters span orders of
        // magnitude, so the middle of HBM and NVMe is their geometric
        // mean, not their average.
        return std::pow(a, 1.0 - w) * std::pow(b, w);
    };
    int n = count + 2; // chain length
    for (int j = 1; j <= count; ++j) {
        double w = static_cast<double>(j) / static_cast<double>(n - 1);
        mem::TierParams mid;
        mid.name = count == 1 ? "mid" : "mid" + std::to_string(j);
        mid.capacity = bytes_each;
        mid.read_bw = bw_override > 0.0
                          ? bw_override
                          : lerp(fast.read_bw, slow.read_bw, w);
        mid.write_bw = bw_override > 0.0
                           ? bw_override
                           : lerp(fast.write_bw, slow.write_bw, w);
        mid.read_latency = static_cast<Tick>(
            lerp(static_cast<double>(fast.read_latency),
                 static_cast<double>(slow.read_latency), w));
        mid.write_latency = static_cast<Tick>(
            lerp(static_cast<double>(fast.write_latency),
                 static_cast<double>(slow.write_latency), w));
        mids.push_back(mid);
    }
    // Link 0 keeps the profiled migration channel; the far legs run at
    // the override (when given) so a staged prefetch's early hops are
    // visibly cheaper or dearer than its final fast-bound hop.
    links.assign(static_cast<std::size_t>(count) + 1, migration);
    if (bw_override > 0.0) {
        for (std::size_t i = 1; i < links.size(); ++i) {
            links[i].promote_bw = bw_override;
            links[i].demote_bw = bw_override;
        }
    }
}

RuntimeConfig
RuntimeConfig::optane(std::uint64_t fast_bytes)
{
    RuntimeConfig cfg;
    // DDR4-2666, 6 channels per socket.
    cfg.fast = { "dram", fast_bytes, 76e9, 50e9, 85, 90 };
    // Optane DC PMM, 6 DIMMs, App-Direct mode.
    cfg.slow = { "pmm", 512ull << 30, 30e9, 10e9, 300, 120 };
    // move_pages() through two helper threads.
    cfg.migration = { 8.0e9, 6.0e9, 2 * kUsec };
    // Dual-socket Cascade Lake; sustained FP32 throughput of TF CPU
    // training kernels (far below peak AVX-512).
    cfg.exec = { 0.6e12, 2 * kUsec };
    cfg.profiler = {};
    cfg.sentinel = {};
    return cfg;
}

RuntimeConfig
RuntimeConfig::cxl(std::uint64_t fast_bytes)
{
    RuntimeConfig cfg = optane(fast_bytes);
    // CXL 2.0 attached DDR: near-DRAM bandwidth, ~2-3x the latency.
    cfg.slow = { "cxl", 512ull << 30, 48e9, 40e9, 210, 180 };
    cfg.migration = { 12.0e9, 10.0e9, 2 * kUsec };
    return cfg;
}

RuntimeConfig
RuntimeConfig::gpu(std::uint64_t hbm_bytes)
{
    RuntimeConfig cfg;
    // V100: HBM2.
    cfg.fast = { "hbm", hbm_bytes, 800e9, 750e9, 300, 300 };
    // Host memory reached from the GPU over PCIe 3.0 x16.
    cfg.slow = { "host", 512ull << 30, 11e9, 11e9, 1 * kUsec, 1 * kUsec };
    // cudaMemPrefetchAsync over PCIe, one channel per direction.
    cfg.migration = { 11e9, 11e9, 10 * kUsec };
    // Sustained FP32 throughput + kernel-launch overhead.
    cfg.exec = { 10.0e12, 8 * kUsec };
    cfg.profiler.gpu_pinned = true;
    cfg.profiler.gpu_link_bw = 11e9;
    cfg.sentinel.gpu_mode = true;
    return cfg;
}

Runtime::Runtime(df::Graph graph, RuntimeConfig cfg)
    : graph_(std::move(graph)), cfg_(std::move(cfg))
{
    SENTINEL_ASSERT(graph_.finalized(), "graph must be finalized");
    if (cfg_.telemetry.enabled)
        telemetry_ = std::make_unique<telemetry::Session>(cfg_.telemetry);
    hm_ = std::make_unique<mem::HeterogeneousMemory>(cfg_.tierChain(),
                                                     cfg_.linkChain());
    hm_->setTelemetry(telemetry_.get());
}

void
Runtime::ensureProfiled()
{
    if (profile_)
        return;
    // Profiling runs on its own memory system snapshot: the real
    // implementation profiles the 11th step in place, but the page-
    // aligned profiling allocation must not linger in the training HM.
    mem::HeterogeneousMemory profiling_hm(cfg_.tierChain(),
                                          cfg_.linkChain());
    prof::Profiler profiler(cfg_.profiler);
    profile_ = profiler.profile(graph_, profiling_hm, cfg_.exec);
}

void
Runtime::ensureExecutor()
{
    ensureProfiled();
    if (executor_)
        return;
    policy_ = std::make_unique<SentinelPolicy>(profile_->db,
                                               cfg_.sentinel);
    policy_->setTelemetry(telemetry_.get());
    executor_ = std::make_unique<df::Executor>(graph_, *hm_, cfg_.exec,
                                               *policy_);
    executor_->setTelemetry(telemetry_.get());
}

const prof::ProfileResult &
Runtime::profileResult()
{
    ensureProfiled();
    return *profile_;
}

std::vector<df::StepStats>
Runtime::train(int steps)
{
    ensureExecutor();
    return executor_->run(steps);
}

const SentinelPolicy &
Runtime::policy() const
{
    SENTINEL_ASSERT(policy_ != nullptr, "train() has not run yet");
    return *policy_;
}

} // namespace sentinel::core
