/**
 * @file
 * Migration-interval planning (Sec. IV-D of the paper).
 *
 * A training step is partitioned into equal-length intervals of MIL
 * layers.  At each interval's start Sentinel prefetches the long-lived
 * tensors the *next* interval needs.  The planner picks MIL from the
 * profile alone (no extra training steps):
 *
 *   Eq. 1 (space):  Tensor(MIL) < S - RS(MIL)
 *   Eq. 2 (time):   argmin_MIL ((S - RS(MIL)) / BW - T(MIL))
 *
 * We evaluate both, plus a per-interval refinement of Eq. 2 — the
 * estimated migration time actually exposed beyond each interval's
 * compute — which is what produces the interior optimum the paper
 * measures in Fig. 5.
 */

#ifndef SENTINEL_CORE_INTERVAL_PLANNER_HH
#define SENTINEL_CORE_INTERVAL_PLANNER_HH

#include <cstdint>
#include <vector>

#include "common/units.hh"
#include "profile/profile_db.hh"

namespace sentinel::core {

struct PlannerInputs {
    const prof::ProfileDatabase *db = nullptr;

    /** S: fast memory capacity in bytes. */
    std::uint64_t fast_capacity = 0;

    /** BW: slow -> fast migration bandwidth, bytes/second. */
    double promote_bw = 0.0;

    /** Bandwidths used to project profiled (slow-tier) layer times
     *  onto the steady state where hot data sits in fast memory. */
    double fast_read_bw = 1.0;
    double slow_read_bw = 1.0;

    /**
     * Optional per-layer correction factors on the profiled layer
     * times (empty = profile as-is).  Online re-planning feeds the
     * observed/planned ratio back here so a stale profile can be
     * projected onto what the run actually looks like now.
     */
    std::vector<double> layer_time_scale;
};

/** Diagnostics for one candidate MIL (one point of Fig. 5). */
struct IntervalChoice {
    int mil = 1;
    bool feasible = false;          ///< Eq. 1 holds for every interval
    std::uint64_t max_prefetch = 0; ///< Tensor(MIL): worst interval
    std::uint64_t max_working_set = 0; ///< worst per-interval occupancy
    Tick est_exposed = 0;           ///< estimated exposed migration/step
    Tick est_step_time = 0;         ///< estimated steady step (incl. exposed)
    Tick overlap_margin = 0;        ///< min_k (T_k - migration_k)
    double eq2_objective = 0.0;     ///< literal Eq. 2 value (seconds)
};

struct PlannerResult {
    IntervalChoice best;
    std::vector<IntervalChoice> candidates; ///< one per MIL examined
    std::uint64_t rs_bytes = 0;             ///< chosen reservation (RS)
};

class IntervalPlanner
{
  public:
    explicit IntervalPlanner(PlannerInputs in);

    /**
     * Evaluate candidate MILs (1 .. num_layers) and pick the best.
     *
     * @param rs_cap upper bound on the reservation; the pool is capped
     *        so prefetching keeps at least some fast memory (the paper
     *        assumes S > RS; below its lower bound we degrade
     *        gracefully rather than fail).
     */
    PlannerResult plan(std::uint64_t rs_cap) const;

    /** Bytes to prefetch at the start of interval @p k for k+1. */
    std::uint64_t prefetchBytes(int mil, int interval) const;

    /**
     * Long-lived bytes that must be resident during interval @p k:
     * what k touches plus what is being prefetched for k+1.  This is
     * the occupancy Eq. 1 compares against S - RS.
     */
    std::uint64_t workingSetBytes(int mil, int interval) const;

    /** Estimated steady-state duration of interval @p k. */
    Tick intervalTime(int mil, int interval) const;

    /** Estimated steady-state duration of one layer (scaled inputs
     *  applied) — the divergence monitor's per-layer baseline. */
    Tick layerTimeEstimate(int layer) const { return estimatedLayerTime(layer); }

    /**
     * Fast-memory budget left for migration: S - RS, degrading to 0
     * when the reservation alone exceeds capacity (warned once; the
     * runtime leaves overflow in slow memory).  Shared by plan() and
     * dynamicBoundaries() so both degrade identically.
     */
    std::uint64_t migrationBudget(std::uint64_t rs_bytes) const;

    /**
     * Interval boundaries for the dynamic-length alternative of
     * Sec. IV-E: intervals grow until the bytes arriving for the next
     * window approach the space budget (Eq. 1 applied per interval
     * rather than globally).  The paper argues this buys little over
     * one well-chosen MIL; the ablation bench measures exactly that.
     */
    std::vector<int> dynamicBoundaries(std::uint64_t rs_bytes) const;

    static int
    numIntervals(int num_layers, int mil)
    {
        return (num_layers + mil - 1) / mil;
    }

  private:
    Tick estimatedLayerTime(int layer) const;

    PlannerInputs in_;
    mutable bool warned_degraded_ = false;
};

} // namespace sentinel::core

#endif // SENTINEL_CORE_INTERVAL_PLANNER_HH
