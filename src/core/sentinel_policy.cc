#include "core/sentinel_policy.hh"

#include <algorithm>
#include <array>
#include <map>
#include <unordered_set>

#include "common/logging.hh"

namespace sentinel::core {

SentinelPolicy::SentinelPolicy(const prof::ProfileDatabase &db,
                               SentinelOptions opts)
    : db_(db), opts_(opts), packed_(kPackedBase)
{
}

std::string
SentinelPolicy::name() const
{
    return opts_.gpu_mode ? "sentinel-gpu" : "sentinel";
}

bool
SentinelPolicy::trialDecided() const
{
    return trial_ == TrialState::Idle || trial_ == TrialState::Decided;
}

const char *
SentinelPolicy::trialStateName() const
{
    switch (trial_) {
      case TrialState::Idle:
        return "idle";
      case TrialState::Pending:
        return "pending";
      case TrialState::TrialStall:
        return "trial-stall";
      case TrialState::TrialLeave:
        return "trial-leave";
      case TrialState::Decided:
        return "decided";
    }
    return "?";
}

void
SentinelPolicy::setTelemetry(telemetry::Session *session)
{
    telemetry_ = session;
    if (session) {
        telemetry::MetricRegistry &m = session->metrics();
        divergence_ctr_ = &m.counter("sentinel.divergence_events");
        replan_ctr_ = &m.counter("sentinel.replans");
        lag_ctr_ = &m.counter("sentinel.prefetch_lag_ns");
        evict_ctr_ = &m.counter("sentinel.demand_evictions");
        blocked_ctr_ = &m.counter("sentinel.prefetch_blocked");
    } else {
        divergence_ctr_ = nullptr;
        replan_ctr_ = nullptr;
        lag_ctr_ = nullptr;
        evict_ctr_ = nullptr;
        blocked_ctr_ = nullptr;
    }
}

std::int16_t
SentinelPolicy::currentInterval() const
{
    if (!planned_ || plan_.interval_of.empty())
        return -1;
    return static_cast<std::int16_t>(plan_.intervalOfLayer(current_layer_));
}

void
SentinelPolicy::auditAppend(df::Executor &ex, telemetry::AuditReason reason,
                            std::uint32_t tensor, std::uint64_t bytes)
{
    auditAppendAt(ex, ex.now(), reason, tensor, bytes);
}

void
SentinelPolicy::auditAppendAt(df::Executor &ex, Tick ts,
                              telemetry::AuditReason reason,
                              std::uint32_t tensor, std::uint64_t bytes)
{
    if (!audit_)
        return;
    telemetry::AuditRecord r;
    r.ts = ts;
    r.bytes = bytes;
    r.tensor = tensor;
    r.step = ex.currentStep();
    r.layer = static_cast<std::int16_t>(ex.currentLayer());
    r.interval = currentInterval();
    r.mil = static_cast<std::int16_t>(planned_ ? plan_.mil : 0);
    r.plan_gen = static_cast<std::uint8_t>(replans_);
    r.reason = reason;
    audit_->append(r);
}

std::uint64_t
SentinelPolicy::reservedPoolBytes() const
{
    return pool_ ? pool_->capacity() : 0;
}

std::uint64_t
SentinelPolicy::reservedPoolPeak() const
{
    return pool_ ? pool_->peakUse() : 0;
}

mem::VirtAddr
SentinelPolicy::staticAddress(df::TensorId id) const
{
    SENTINEL_ASSERT(id < static_addr_.size(), "bad tensor id %u", id);
    return static_addr_[id];
}

bool
SentinelPolicy::isPoolPage(mem::PageId page) const
{
    return pool_ && pool_->containsPage(page);
}

void
SentinelPolicy::buildStaticLayout(const df::Graph &graph)
{
    static_addr_.assign(graph.numTensors(), kInvalidAddr);

    // Rule: preallocated tensors never share pages (they cannot be
    // reorganized mid-training; exclusive pages at least stop false
    // sharing).
    alloc::VirtualArena prealloc_arena(kPreallocBase);
    for (df::TensorId id : graph.preallocatedTensors()) {
        const df::TensorDesc &t = graph.tensor(id);
        static_addr_[id] =
            prealloc_arena.allocate(t.pageAlignedBytes(), mem::kPageSize);
    }

    layout_footprint_ = 0;
    if (!opts_.use_coalloc)
        return; // everything else goes through the packed arena

    if (opts_.layout_planner == LayoutPlanner::Interval) {
        // Offline interval-graph offset assignment over the same
        // long-lived set: tensors keep fixed addresses for the whole
        // run (the migration plan needs that), but disjoint-lifetime
        // tensors share bytes — the pages between them unmap and remap
        // through the executor's refcounts.
        std::vector<plan::PlanTensor> tensors = plan::tensorsFromGraph(
            graph, /*include_preallocated=*/false,
            /*long_lived_only=*/true);
        plan::OffsetPlan p =
            plan::assignOffsets(tensors, plan::Solver::Greedy, 64);
        for (std::size_t i = 0; i < tensors.size(); ++i)
            static_addr_[tensors[i].id] = kCoallocBase + p.offsets[i];
        layout_footprint_ = p.footprint;
        return;
    }

    // Rules 2+3: long-lived tensors residing in exactly the same layers
    // share pages, laid out in descending access count; different spans
    // never share.  Each span class gets a page-aligned region.
    std::map<std::pair<int, int>, std::vector<df::TensorId>> classes;
    for (const auto &t : graph.tensors()) {
        if (t.preallocated || t.shortLived())
            continue;
        classes[{ t.first_layer, t.last_layer }].push_back(t.id);
    }

    alloc::VirtualArena coalloc_arena(kCoallocBase);
    for (auto &kv : classes) {
        auto &ids = kv.second;
        std::sort(ids.begin(), ids.end(),
                  [this](df::TensorId a, df::TensorId b) {
                      double ha = db_.tensor(a).accesses_per_page;
                      double hb = db_.tensor(b).accesses_per_page;
                      if (ha != hb)
                          return ha > hb;
                      return a < b;
                  });
        std::uint64_t total = 0;
        for (df::TensorId id : ids)
            total += graph.tensor(id).bytes;
        // Reserve the class region page-aligned, then pack members.
        mem::VirtAddr base = coalloc_arena.allocate(
            mem::roundUpToPages(total), mem::kPageSize);
        mem::VirtAddr cursor = base;
        for (df::TensorId id : ids) {
            static_addr_[id] = cursor;
            cursor += graph.tensor(id).bytes;
            cursor = (cursor + 63) & ~63ull;
        }
    }
    layout_footprint_ = coalloc_arena.highWater();
}

void
SentinelPolicy::computePlan(const PlannerInputs &in, std::uint64_t rs_cap)
{
    IntervalPlanner planner(in);
    planner_result_ = planner.plan(rs_cap);

    if (opts_.use_dynamic_intervals) {
        plan_ = buildMigrationPlan(
            db_, planner.dynamicBoundaries(planner_result_.rs_bytes));
    } else {
        int mil =
            opts_.use_interval_planner ? planner_result_.best.mil : 1;
        if (opts_.forced_mil > 0)
            mil = opts_.forced_mil;
        plan_ = buildMigrationPlan(db_, mil);
    }
    planned_ = true;

    // Per-layer baseline for the divergence monitor; the step estimate
    // is the layer sum plus the exposure the *used* MIL predicts (the
    // forced/ablation MIL may differ from the planner's pick).
    int L = db_.numLayers();
    planned_layer_.assign(static_cast<std::size_t>(L), 0);
    planned_step_time_ = 0;
    for (int l = 0; l < L; ++l) {
        planned_layer_[static_cast<std::size_t>(l)] =
            planner.layerTimeEstimate(l);
        planned_step_time_ += planned_layer_[static_cast<std::size_t>(l)];
    }
    Tick exposed = planner_result_.best.est_exposed;
    for (const IntervalChoice &c : planner_result_.candidates)
        if (c.mil == plan_.mil)
            exposed = c.est_exposed;
    planned_step_time_ += exposed;
    observed_layer_.assign(static_cast<std::size_t>(L), 0);
}

void
SentinelPolicy::onTrainingStart(df::Executor &ex)
{
    const df::Graph &graph = ex.graph();
    mem::HeterogeneousMemory &hm = ex.hm();
    std::uint64_t S = hm.tier(mem::Tier::Fast).capacity();

    std::uint64_t rs_cap = static_cast<std::uint64_t>(
        static_cast<double>(S) * opts_.rs_cap_fraction);
    rs_cap = mem::roundUpToPages(rs_cap);

    PlannerInputs in;
    in.db = &db_;
    in.fast_capacity = S;
    in.promote_bw = hm.promoteChannel().bandwidth();
    in.fast_read_bw = hm.tierParams(mem::Tier::Fast).read_bw;
    in.slow_read_bw = hm.tierParams(hm.slowestTier()).read_bw;
    computePlan(in, rs_cap);

    if (opts_.use_reserved_pool && planner_result_.rs_bytes > 0) {
        pool_ = std::make_unique<alloc::ReservedPool>(
            kPoolBase, mem::roundUpToPages(planner_result_.rs_bytes));
    }

    buildStaticLayout(graph);
    pool_allocs_.assign(graph.numTensors(), kInvalidAddr);
    packed_allocs_.assign(graph.numTensors(), kInvalidAddr);

    // One-time planning cost (the "quick exploration" of Sec. IV-D).
    ex.chargePolicy(opts_.planner_overhead);

    if (opts_.gpu_mode) {
        mode_stall_ = true;
        trial_ = TrialState::Decided;
    }
}

void
SentinelPolicy::replan(df::Executor &ex, int step)
{
    mem::HeterogeneousMemory &hm = ex.hm();

    // Plan against what the run looks like NOW: the live (possibly
    // degraded) bandwidth and capacity, and the profile projected by
    // what the layers actually took.  The divergent step's per-layer
    // times are NOT usable directly — Case-3 stalls concentrate at
    // interval-start layers, and feeding those ratios back would bake
    // transient migration waits into the compute estimates (a re-plan
    // that made things worse than the stale plan).  Environment decay
    // already arrives through the live bandwidth/capacity inputs; the
    // *median* layer ratio isolates genuine compute/traffic drift,
    // which is uniform across layers.
    PlannerInputs in;
    in.db = &db_;
    in.fast_capacity = hm.tier(mem::Tier::Fast).capacity();
    in.promote_bw = hm.promoteChannel().bandwidth();
    in.fast_read_bw = hm.tierParams(mem::Tier::Fast).read_bw;
    in.slow_read_bw = hm.tierParams(hm.slowestTier()).read_bw;
    int L = db_.numLayers();
    std::vector<double> ratios;
    ratios.reserve(static_cast<std::size_t>(L));
    for (int l = 0; l < L; ++l) {
        auto i = static_cast<std::size_t>(l);
        if (planned_layer_[i] > 0 && observed_layer_[i] > 0)
            ratios.push_back(static_cast<double>(observed_layer_[i]) /
                             static_cast<double>(planned_layer_[i]));
    }
    double scale = 1.0;
    if (!ratios.empty()) {
        auto mid = ratios.begin() +
                   static_cast<std::ptrdiff_t>(ratios.size() / 2);
        std::nth_element(ratios.begin(), mid, ratios.end());
        scale = std::clamp(*mid, 0.25, 4.0);
    }
    in.layer_time_scale.assign(static_cast<std::size_t>(L), scale);

    // The reservation cannot move — live allocations sit in the pool —
    // so the re-plan keeps it and redistributes only the migration
    // budget and the interval structure.
    std::uint64_t rs_cap = pool_ ? pool_->capacity() : 0;
    computePlan(in, rs_cap);

    // Queued prefetch intents survive the re-plan: the tensors the old
    // plan wanted soon are overwhelmingly the ones the new plan wants
    // too, and dropping them would force demand misses into the very
    // steps the re-armed trial is about to measure.

    // The stall-vs-leave economics changed with the environment:
    // re-arm the Case-3 test-and-trial (Sec. IV-D) from scratch.
    if (!opts_.gpu_mode) {
        trial_ = TrialState::Idle;
        mode_stall_ = true;
        trial_stall_time_ = 0;
        trial_retries_ = 0;
    }

    // The transition step runs half-old-plan, half-new: any trial it
    // overlaps is void (same S3 guard as a Case-2/Case-3 event).
    ++perturb_this_step_;

    ++replans_;
    last_replan_step_ = step;
    divergent_streak_ = 0;
    ex.chargePolicy(opts_.replan_overhead);
    auditAppend(ex, telemetry::AuditReason::kReplanDivergence,
                telemetry::kAuditNoTensor, 0);
    if (telemetry_) {
        telemetry_->emit(telemetry::EventType::Replan, ex.now(),
                         opts_.replan_overhead, 0,
                         static_cast<std::uint32_t>(step));
        replan_ctr_->add(1);
    }
    SENTINEL_INFORM("sentinel: re-planned at step %d (mil %d, plan %s)",
                    step, plan_.mil,
                    planner_result_.best.feasible ? "feasible"
                                                  : "degraded");
}

df::AllocDecision
SentinelPolicy::allocate(df::Executor &ex, const df::TensorDesc &tensor)
{
    SENTINEL_ASSERT(planned_, "allocate() before onTrainingStart()");

    // GPU mode: when device memory cannot host a new tensor, evict
    // what the plan was about to demote anyway and wait for the
    // transfers (host fallback is not an option for compute).  On the
    // CPU platform the slow tier is directly usable, so overflow
    // simply lands there and the test-and-trial economics apply.
    if (opts_.gpu_mode && !tensor.preallocated) {
        mem::HeterogeneousMemory &hm = ex.hm();
        std::uint64_t need = mem::roundUpToPages(tensor.bytes);
        if (hm.tier(mem::Tier::Fast).free() < need) {
            evictForSpace(ex, need);
            if (hm.demoteBusyUntil() > ex.now() &&
                hm.tier(mem::Tier::Fast).free() < need) {
                ex.stallUntil(hm.demoteBusyUntil());
            }
        }
    }

    if (tensor.preallocated) {
        // Before training everything starts in slow memory (Sec. VI) —
        // the chain's far end; the plan prefetches the hot ones
        // immediately (staged through the middle tiers, if any).
        return { static_addr_[tensor.id], ex.hm().slowestTier() };
    }

    if (tensor.shortLived() && pool_) {
        mem::VirtAddr addr = pool_->allocate(tensor.bytes);
        if (addr != alloc::ReservedPool::kInvalidAddr) {
            pool_allocs_[tensor.id] = addr;
            auditAppend(ex, telemetry::AuditReason::kPinReservedPool,
                        tensor.id, tensor.bytes);
            return { addr, mem::Tier::Fast };
        }
        // Pool exhausted: fall through to the overflow path below.
    }

    if (opts_.use_coalloc && !tensor.shortLived()) {
        SENTINEL_ASSERT(static_addr_[tensor.id] != kInvalidAddr,
                        "no static address for tensor %u", tensor.id);
        // Long-lived intermediates are born hot: produce them in fast
        // memory; the plan demotes them once their interval is done.
        return { static_addr_[tensor.id], mem::Tier::Fast };
    }

    // Packed fallback: short-lived overflow (pool exhausted/disabled)
    // or the no-coalloc ablation.
    mem::VirtAddr addr = packed_.allocate(tensor.bytes, 64);
    packed_allocs_[tensor.id] = addr;
    return { addr, mem::Tier::Fast };
}

void
SentinelPolicy::onTensorFreed(df::Executor &ex, df::TensorId id,
                              const df::TensorPlacement &pl)
{
    // allocate() sized this allocation with tensor.bytes; the free
    // path uses the placement's byte count.  They must be the same
    // value or the pool/arena accounting drifts a little on every
    // step until allocations mysteriously start failing.
    SENTINEL_ASSERT(pl.bytes == ex.graph().tensor(id).bytes,
                    "tensor %u freed with %llu bytes but allocated "
                    "with %llu",
                    id, static_cast<unsigned long long>(pl.bytes),
                    static_cast<unsigned long long>(
                        ex.graph().tensor(id).bytes));
    if (id < pool_allocs_.size() && pool_allocs_[id] != kInvalidAddr) {
        pool_->free(pool_allocs_[id], pl.bytes);
        pool_allocs_[id] = kInvalidAddr;
        return;
    }
    if (id < packed_allocs_.size() && packed_allocs_[id] != kInvalidAddr) {
        packed_.free(packed_allocs_[id], pl.bytes);
        packed_allocs_[id] = kInvalidAddr;
    }
    // Static (co-allocated) addresses are fixed for the whole training:
    // the same tensor reuses the same range every step.
}

void
SentinelPolicy::issuePrefetch(df::Executor &ex, int interval)
{
    // Targets not promoted by the previous interval's end are stale:
    // drop them (their accesses will read slow memory) and queue the
    // new interval's list, hottest first.
    const auto &list =
        plan_.prefetch_at[static_cast<std::size_t>(interval)];
    pending_prefetch_.assign(list.begin(), list.end());
    pending_head_ = 0;
    if (telemetry_) {
        for (df::TensorId id : list)
            telemetry_->emit(telemetry::EventType::PrefetchIssued,
                             ex.now(), 0, ex.graph().tensor(id).bytes,
                             id);
    }
    drainPrefetchQueue(ex);
}

void
SentinelPolicy::drainPrefetchQueue(df::Executor &ex)
{
    mem::HeterogeneousMemory &hm = ex.hm();
    Tick now = ex.now();

    // Compact the consumed prefix so rotation below never grows the
    // buffer past (live entries + rotations this drain).
    if (pending_head_ > 0) {
        pending_prefetch_.erase(pending_prefetch_.begin(),
                                pending_prefetch_.begin() +
                                    static_cast<std::ptrdiff_t>(
                                        pending_head_));
        pending_head_ = 0;
    }

    // Each entry is visited at most once per drain; tensors that are
    // not allocated yet (born later in the interval, e.g. activations
    // a long interval will demote and re-need) rotate to the back and
    // are retried at the next layer boundary.
    std::size_t visits = pending_prefetch_.size();
    while (visits-- > 0 && pending_head_ < pending_prefetch_.size()) {
        df::TensorId id = pending_prefetch_[pending_head_];
        if (!ex.isAllocated(id)) {
            ++pending_head_;
            pending_prefetch_.push_back(id);
            continue;
        }
        const df::TensorPlacement &pl = ex.placementOf(id);
        batch_.clear();
        // Pool tensors are never migrated, and a placement lives
        // entirely inside or outside the pool region — one check
        // covers every page.
        if (!isPoolPage(pl.firstPage())) {
            mem::PageId p = pl.firstPage();
            const mem::PageId end = pl.endPage();
            while (p < end) {
                mem::PageRunState rs =
                    hm.residentRange(p, end - p, now);
                if (rs.tier != mem::Tier::Fast && !rs.in_flight)
                    for (std::uint64_t i = 0; i < rs.count; ++i)
                        batch_.push_back(p + i);
                p += rs.count;
            }
        }
        // One move_pages() call per tensor: the setup cost is paid
        // once and the pages stream back-to-back.
        std::size_t scheduled =
            hm.migratePages(batch_, mem::Tier::Fast, now);
        if (scheduled > 0)
            auditAppend(ex, telemetry::AuditReason::kPrefetchNextInterval,
                        id, scheduled * mem::kPageSize);
        if (scheduled < batch_.size()) {
            // Fast memory is full right now; in-flight demotions will
            // free space — retry at the next layer boundary (hotter
            // tensors stay at the queue's front).
            if (telemetry_)
                blocked_ctr_->add(1);
            return;
        }
        ++pending_head_;
    }
}

void
SentinelPolicy::stagePrefetches(df::Executor &ex, int interval)
{
    mem::HeterogeneousMemory &hm = ex.hm();
    if (hm.numTiers() <= 2 || plan_.prefetch_at.empty())
        return;
    Tick now = ex.now();
    int N = static_cast<int>(plan_.prefetch_at.size());

    // Middle tiers are staging buffers (Sec. IV-C generalized): a
    // tensor the plan promotes `lead` intervals from now should sit
    // `lead` legs from fast memory by then, so each interval moves it
    // one leg closer and the final slow->fast hop crosses only link 0.
    // Worked for the 3-tier case: a tensor due in interval k+2 moves
    // slowest->middle now (interval k) and middle->fast at k+1.
    for (unsigned lead = 1; lead + 1 < hm.numTiers(); ++lead) {
        mem::Tier stage = mem::makeTier(lead);
        const auto &list = plan_.prefetch_at[static_cast<std::size_t>(
            (interval + static_cast<int>(lead)) % N)];
        for (df::TensorId id : list) {
            if (!ex.isAllocated(id))
                continue;
            const df::TensorPlacement &pl = ex.placementOf(id);
            if (isPoolPage(pl.firstPage()))
                continue;
            batch_.clear();
            mem::PageId p = pl.firstPage();
            const mem::PageId end = pl.endPage();
            while (p < end) {
                mem::PageRunState rs = hm.residentRange(p, end - p, now);
                if (mem::tierIndex(rs.tier) > lead && !rs.in_flight)
                    for (std::uint64_t i = 0; i < rs.count; ++i)
                        batch_.push_back(p + i);
                p += rs.count;
            }
            // Best-effort: a full middle tier simply leaves the pages
            // where they are; the direct promotion path still covers
            // them when their own interval arrives.
            std::size_t scheduled = hm.migratePages(batch_, stage, now);
            if (scheduled > 0)
                auditAppend(ex, telemetry::AuditReason::kPrefetchStage,
                            id, scheduled * mem::kPageSize);
        }
    }
}

std::vector<df::TensorId>
SentinelPolicy::evictionCandidates(const df::Executor &ex) const
{
    int L = static_cast<int>(plan_.demote_at_layer.size());

    // The backward scan below wraps modulo L, so "layers behind us"
    // includes layers *ahead* in this step (their demote point passed
    // in the previous step).  That is mostly what we want — those
    // tensors are idle until their next use — EXCEPT for tensors the
    // upcoming interval is being loaded with right now: evicting a
    // just-issued prefetch both wastes the transfer and guarantees a
    // Case-2 miss when the interval starts.  Protect everything still
    // queued and everything on the current interval's prefetch list.
    std::unordered_set<df::TensorId> protect(
        pending_prefetch_.begin() +
            static_cast<std::ptrdiff_t>(pending_head_),
        pending_prefetch_.end());
    if (!plan_.prefetch_at.empty()) {
        int interval = plan_.intervalOfLayer(current_layer_);
        for (df::TensorId id :
             plan_.prefetch_at[static_cast<std::size_t>(interval)])
            protect.insert(id);
    }

    std::vector<df::TensorId> out;
    std::unordered_set<df::TensorId> seen;
    for (int d = 1; d <= L; ++d) {
        int l = (current_layer_ - d + L) % L;
        for (df::TensorId id :
             plan_.demote_at_layer[static_cast<std::size_t>(l)]) {
            if (protect.count(id) || seen.count(id))
                continue;
            if (!ex.isAllocated(id))
                continue;
            seen.insert(id);
            out.push_back(id);
        }
    }
    return out;
}

void
SentinelPolicy::evictForSpace(df::Executor &ex,
                              std::uint64_t bytes_needed)
{
    mem::HeterogeneousMemory &hm = ex.hm();
    Tick now = ex.now();
    std::uint64_t reclaimed = 0;

    // Demand eviction is itself a divergence/pressure signal: the plan
    // thought everything would fit.
    ++perturb_this_step_;
    if (telemetry_)
        evict_ctr_->add(1);

    // Victims ordered by the demotion schedule walked backward from the
    // current layer: tensors whose demote point just passed have no
    // access until at least the next interval — if any are still
    // resident (e.g. re-promoted early by an aggressive prefetch),
    // they are the safest victims.
    for (df::TensorId id : evictionCandidates(ex)) {
        if (reclaimed >= bytes_needed)
            break;
        const df::TensorPlacement &pl = ex.placementOf(id);
        batch_.clear();
        if (!isPoolPage(pl.firstPage())) {
            mem::PageId p = pl.firstPage();
            const mem::PageId end = pl.endPage();
            while (p < end) {
                mem::PageRunState rs =
                    hm.residentRange(p, end - p, now);
                if (rs.tier == mem::Tier::Fast && !rs.in_flight)
                    for (std::uint64_t i = 0; i < rs.count; ++i)
                        batch_.push_back(p + i);
                p += rs.count;
            }
        }
        std::size_t scheduled =
            hm.migratePages(batch_, hm.slowestTier(), now);
        if (scheduled > 0)
            auditAppend(ex, telemetry::AuditReason::kEvictForSpace, id,
                        scheduled * mem::kPageSize);
        reclaimed += scheduled * mem::kPageSize;
    }
}

void
SentinelPolicy::issueDemotions(df::Executor &ex, int layer)
{
    mem::HeterogeneousMemory &hm = ex.hm();
    Tick now = ex.now();
    for (df::TensorId id :
         plan_.demote_at_layer[static_cast<std::size_t>(layer)]) {
        if (!ex.isAllocated(id))
            continue;
        const df::TensorPlacement &pl = ex.placementOf(id);
        batch_.clear();
        if (!isPoolPage(pl.firstPage())) {
            mem::PageId p = pl.firstPage();
            const mem::PageId end = pl.endPage();
            while (p < end) {
                mem::PageRunState rs =
                    hm.residentRange(p, end - p, now);
                if (rs.tier == mem::Tier::Fast && !rs.in_flight)
                    for (std::uint64_t i = 0; i < rs.count; ++i)
                        batch_.push_back(p + i);
                p += rs.count;
            }
        }
        std::size_t scheduled =
            hm.migratePages(batch_, hm.slowestTier(), now);
        if (scheduled > 0)
            auditAppend(ex, telemetry::AuditReason::kEvictDeadTensor, id,
                        scheduled * mem::kPageSize);
    }
}

void
SentinelPolicy::onLayerBegin(df::Executor &ex, int layer)
{
    current_layer_ = layer;
    layer_begin_ = ex.now();
    if (ex.attribution())
        ex.attribution()->setInterval(currentInterval());
    if (!plan_.isIntervalStart(layer)) {
        drainPrefetchQueue(ex);
        return;
    }
    int interval = plan_.intervalOfLayer(layer);
    if (telemetry_)
        telemetry_->emit(telemetry::EventType::IntervalBegin, ex.now(), 0,
                         0, static_cast<std::uint32_t>(interval));

    // Case-3 detection: the prefetch issued for *this* interval (at the
    // start of the previous one) has not finished.  Ignore the first
    // steps, whose cold start always has migrations outstanding (the
    // real system skips TensorFlow's hardware-detection steps plus the
    // profiling step before reacting, Sec. VI).
    if (ex.currentStep() >= 3 &&
        ex.hm().promoteBusyUntil() > ex.now()) {
        ++case3_events_;
        ++perturb_this_step_;
        // Prefetch-completion lag: how far behind this interval's
        // prefetch is running — one of the monitor's divergence
        // signals (a bandwidth fault shows up here first).
        Tick lag = ex.hm().promoteBusyUntil() - ex.now();
        lag_this_step_ += lag;
        if (telemetry_)
            lag_ctr_->add(static_cast<std::uint64_t>(lag));
        if (!opts_.gpu_mode && trial_ == TrialState::Idle)
            trial_ = TrialState::Pending;
    }

    issuePrefetch(ex, interval);
    // Middle-tier staging rides behind the interval's own prefetch so
    // the tensors needed soonest get the channels and capacity first.
    stagePrefetches(ex, interval);
}

void
SentinelPolicy::onLayerEnd(df::Executor &ex, int layer)
{
    observed_layer_[static_cast<std::size_t>(layer)] =
        ex.now() - layer_begin_;
    issueDemotions(ex, layer);
}

void
SentinelPolicy::onStepBegin(df::Executor &ex, int)
{
    step_begin_ = ex.now();
    perturb_this_step_ = 0;
    lag_this_step_ = 0;
    switch (trial_) {
      case TrialState::Pending:
        trial_ = TrialState::TrialStall;
        mode_stall_ = true;
        ++trial_steps_;
        break;
      case TrialState::TrialLeave:
        mode_stall_ = false;
        ++trial_steps_;
        break;
      default:
        break;
    }
}

void
SentinelPolicy::onStepEnd(df::Executor &ex, int step)
{
    Tick step_time = ex.now() - step_begin_;
    bool in_trial = trial_ == TrialState::TrialStall ||
                    trial_ == TrialState::TrialLeave;
    if (trial_ == TrialState::TrialStall) {
        trial_stall_time_ = step_time;
        trial_stall_perturb_ = perturb_this_step_;
        trial_ = TrialState::TrialLeave;
    } else if (trial_ == TrialState::TrialLeave) {
        if (perturb_this_step_ != trial_stall_perturb_ &&
            trial_retries_ < opts_.max_trial_retries) {
            // A Case-2/Case-3 perturbation landed in exactly one of
            // the two trial steps: the stall-vs-leave times are not
            // comparable.  Re-run the trial instead of committing to
            // a decision taken on noise.
            ++trial_retries_;
            trial_ = TrialState::Pending;
        } else {
            // Adopt whichever variant was faster (Sec. IV-D).
            mode_stall_ = trial_stall_time_ <= step_time;
            trial_ = TrialState::Decided;
        }
    }

    // --- Divergence monitor -------------------------------------------
    // Trial steps deliberately run off-policy (they measure variants),
    // and the cold start always diverges; neither says the profile went
    // stale.
    if (!opts_.enable_divergence_monitor || in_trial || step < 3)
        return;
    Tick planned = planned_step_time_;
    if (planned <= 0)
        return;
    double thr = opts_.divergence_threshold;
    bool slow_step =
        static_cast<double>(step_time) >
        static_cast<double>(planned) * (1.0 + thr);
    // Prefetch lag is tracked (lag counter, Case-3 events) but only an
    // actually-slow step feeds the streak: persistent lag behind an
    // acceptable step time means the plan is still hiding the latency,
    // and re-planning would destabilize a working configuration.
    if (slow_step) {
        ++divergence_events_;
        ++divergent_streak_;
        if (telemetry_) {
            telemetry_->emit(telemetry::EventType::DivergenceDetected,
                             ex.now(), 0,
                             static_cast<std::uint64_t>(step_time),
                             static_cast<std::uint32_t>(step));
            divergence_ctr_->add(1);
        }
    } else {
        divergent_streak_ = 0;
    }
    bool cooled =
        last_replan_step_ < 0 ||
        step - last_replan_step_ >= opts_.replan_cooldown;
    if (divergent_streak_ >= opts_.divergence_patience && cooled &&
        replans_ < opts_.max_replans) {
        replan(ex, step);
    }
}

df::PageAccessResult
SentinelPolicy::onPageAccess(df::Executor &ex, mem::PageId page, bool)
{
    // GPU mode only: the device cannot compute out of host memory, so
    // a page that slipped to the host (born when the device was full)
    // is faulted back on first touch — a rare, fully exposed path that
    // keeps large batches *correct*; the plan keeps it infrequent.
    if (!opts_.gpu_mode)
        return {};
    mem::HeterogeneousMemory &hm = ex.hm();
    Tick now = ex.now();
    if (hm.residentTier(page, now) == mem::Tier::Fast ||
        hm.inFlight(page, now))
        return {};

    if (hm.tier(mem::Tier::Fast).free() < mem::kPageSize)
        evictForSpace(ex, 64 * mem::kPageSize);

    // The executor's attribution context knows which tensor's pages are
    // being walked; borrow it so the demand-fault record names a tensor.
    std::uint32_t faulted = ex.attribution()
                                ? ex.attribution()->accessTensor()
                                : telemetry::kAuditNoTensor;

    std::array<mem::PageId, 1> one{ page };
    df::PageAccessResult out;
    if (hm.migratePages(one, mem::Tier::Fast, now) == 1) {
        auditAppend(ex, telemetry::AuditReason::kPrefetchDemand, faulted,
                    mem::kPageSize);
        out.extra = hm.arrivalTime(page) - now;
        out.effective = mem::Tier::Fast;
    } else if (hm.demoteBusyUntil() > now) {
        // Wait for evictions, then pull the page across.
        out.extra = hm.demoteBusyUntil() - now;
        hm.commitUpTo(hm.demoteBusyUntil());
        if (hm.migratePages(one, mem::Tier::Fast,
                            hm.demoteBusyUntil()) == 1) {
            // The transfer starts when the demote channel frees, later
            // than ex.now() — stamp the record at the migration's
            // schedule time so the trace join holds.
            auditAppendAt(ex, hm.demoteBusyUntil(),
                          telemetry::AuditReason::kPrefetchDemand, faulted,
                          mem::kPageSize);
            out.extra += hm.arrivalTime(page) - hm.demoteBusyUntil();
            out.effective = mem::Tier::Fast;
        }
    }
    return out;
}

void
SentinelPolicy::onRangeAccess(df::Executor &ex, mem::PageRun run,
                              bool is_write,
                              std::vector<df::AccessSegment> &out)
{
    if (!opts_.gpu_mode) {
        // CPU mode never reacts to accesses (migration happens at
        // interval boundaries): the whole run is one segment, and the
        // executor's walk applies stallForInflight() per page across
        // any migration boundary.
        df::AccessSegment seg;
        seg.pages = run.count;
        out.push_back(seg);
        return;
    }
    // GPU mode: device-resident or already-migrating prefixes take no
    // fault; a host-resident idle page goes through the exact per-page
    // demand-fault path.
    mem::HeterogeneousMemory &hm = ex.hm();
    Tick now = ex.now();
    std::uint64_t covered = 0;
    while (covered < run.count) {
        mem::PageRunState rs = hm.residentRange(run.first + covered,
                                                run.count - covered, now);
        if (rs.tier != mem::Tier::Fast && !rs.in_flight)
            break;
        covered += rs.count;
    }
    if (covered > 0) {
        df::AccessSegment seg;
        seg.pages = covered;
        out.push_back(seg);
        return;
    }
    df::MemoryPolicy::onRangeAccess(ex, run, is_write, out);
}

bool
SentinelPolicy::stallForInflight(df::Executor &, mem::PageId page)
{
    if (isPoolPage(page))
        return false; // pool pages are never migrated
    return mode_stall_;
}

} // namespace sentinel::core
