/**
 * @file
 * The Sentinel runtime policy (Sec. IV of the paper).
 *
 * Combines every mechanism of the paper:
 *
 *  1. profile-driven data reorganization (Sec. IV-B): preallocated
 *     tensors get exclusive pages; long-lived tensors living in
 *     exactly the same layer span are co-allocated contiguously in
 *     descending access-count order; tensors of different classes
 *     never share a page — page-level false sharing is gone;
 *  2. a reserved fast-memory pool for short-lived tensors
 *     (Sec. IV-C): allocated there, pinned, never migrated;
 *  3. adaptive layer-based migration (Sec. IV-D): the interval planner
 *     picks MIL; prefetches are issued at interval starts (hottest
 *     first) and overlap with training; tensors are demoted
 *     mid-interval as soon as the rest of the interval no longer needs
 *     them (avoiding Case 2); Case 3 (migration unfinished in time) is
 *     resolved by a test-and-trial between stalling and reading from
 *     slow memory;
 *  4. Sentinel-GPU (Sec. V): identical, except Case 3 must always
 *     stall — the GPU cannot compute out of host memory.
 *
 * The ablation flags reproduce Fig. 13's breakdown: "direct migration"
 * (no interval planning, no reservation), "w/ det. MI" (planning but
 * no reservation), "w/ all".
 */

#ifndef SENTINEL_CORE_SENTINEL_POLICY_HH
#define SENTINEL_CORE_SENTINEL_POLICY_HH

#include <memory>
#include <optional>
#include <vector>

#include "alloc/arena.hh"
#include "alloc/reserved_pool.hh"
#include "core/interval_planner.hh"
#include "core/migration_plan.hh"
#include "dataflow/executor.hh"
#include "dataflow/policy.hh"
#include "plan/offset_planner.hh"
#include "profile/profile_db.hh"
#include "telemetry/audit.hh"
#include "telemetry/session.hh"

namespace sentinel::core {

/** How buildStaticLayout lays out the long-lived co-allocated set. */
enum class LayoutPlanner {
    /** The paper's rule: per-lifetime-class regions, members packed in
     *  descending hotness (Sec. IV-B).  The default. */
    Greedy,
    /** Offline interval-graph offset assignment (plan::assignOffsets):
     *  disjoint-lifetime tensors share bytes, shrinking the static
     *  footprint when lifetimes interleave. */
    Interval,
};

struct SentinelOptions {
    /** Use the Eq. 1/Eq. 2 planner; off = per-layer "direct" migration. */
    bool use_interval_planner = true;

    /**
     * Experimental (Sec. IV-E): per-interval dynamic lengths instead
     * of one global MIL.  The paper rejects this for its search cost
     * and minimal benefit; kept here to measure that trade-off.
     */
    bool use_dynamic_intervals = false;

    /** Reserve fast memory for short-lived tensors. */
    bool use_reserved_pool = true;

    /** Apply the co-allocation rules (off = packed TF-style layout). */
    bool use_coalloc = true;

    /** Solver for the static co-allocation layout (greedy keeps the
     *  paper's behaviour bit-for-bit; interval plugs in src/plan/). */
    LayoutPlanner layout_planner = LayoutPlanner::Greedy;

    /** GPU mode: Case 3 always stalls; no test-and-trial. */
    bool gpu_mode = false;

    /**
     * Force a specific migration interval length (0 = let the planner
     * choose).  Used by the Fig. 5 sweep.
     */
    int forced_mil = 0;

    /** One-time planning cost charged to the first step. */
    Tick planner_overhead = 100 * kUsec;

    /** Fraction of fast memory the reservation may occupy at most. */
    double rs_cap_fraction = 0.6;

    /**
     * Online divergence monitoring: compare each steady step against
     * the planner's estimate and re-plan mid-training when the run no
     * longer matches the profile (degraded bandwidth, shrunk capacity,
     * drifted layer times — the scenarios the fault injector creates).
     */
    bool enable_divergence_monitor = true;

    /** A step counts as divergent when its observed time exceeds
     *  (1 + divergence_threshold) x the planned step time. */
    double divergence_threshold = 0.25;

    /** Consecutive divergent steps required before re-planning. */
    int divergence_patience = 2;

    /** Minimum steps between two re-plans (let the new plan settle). */
    int replan_cooldown = 3;

    /** Hard cap on mid-training re-plans per run. */
    int max_replans = 4;

    /** Planner cost charged to the step that triggers a re-plan. */
    Tick replan_overhead = 50 * kUsec;

    /** Re-runs of an inconclusive test-and-trial (a Case-2/Case-3
     *  perturbation landing in exactly one of the two trial steps). */
    int max_trial_retries = 2;
};

class SentinelPolicy : public df::MemoryPolicy
{
  public:
    SentinelPolicy(const prof::ProfileDatabase &db,
                   SentinelOptions opts = {});

    std::string name() const override;

    // --- MemoryPolicy ------------------------------------------------------

    void onTrainingStart(df::Executor &ex) override;
    void onStepBegin(df::Executor &ex, int step) override;
    void onStepEnd(df::Executor &ex, int step) override;
    void onLayerBegin(df::Executor &ex, int layer) override;
    void onLayerEnd(df::Executor &ex, int layer) override;

    df::AllocDecision allocate(df::Executor &ex,
                               const df::TensorDesc &tensor) override;
    void onTensorFreed(df::Executor &ex, df::TensorId id,
                       const df::TensorPlacement &pl) override;
    df::PageAccessResult onPageAccess(df::Executor &ex, mem::PageId page,
                                      bool is_write) override;
    void onRangeAccess(df::Executor &ex, mem::PageRun run, bool is_write,
                       std::vector<df::AccessSegment> &out) override;
    bool stallForInflight(df::Executor &ex, mem::PageId page) override;

    // --- Introspection (Table III, Fig. 13, tests) --------------------------

    const PlannerResult &plannerResult() const { return planner_result_; }
    const MigrationPlan &migrationPlan() const { return plan_; }
    int case3Events() const { return case3_events_; }
    int trialStepsUsed() const { return trial_steps_; }
    /** Resolved Case-3 handling after test-and-trial. */
    bool stallModeChosen() const { return mode_stall_; }
    /** True once the test-and-trial reached a decision (or never ran). */
    bool trialDecided() const;
    /** Human-readable trial state for harness stats. */
    const char *trialStateName() const;
    /** Steps the divergence monitor flagged as off-plan. */
    int divergenceEvents() const { return divergence_events_; }
    /** Mid-training re-plans performed. */
    int replans() const { return replans_; }
    /** Planner's step-time estimate the monitor compares against. */
    Tick plannedStepTime() const { return planned_step_time_; }
    std::uint64_t reservedPoolBytes() const;
    std::uint64_t reservedPoolPeak() const;

    /** Prefetches queued but not yet fully migrated (tests), in
     *  queue order.  A snapshot: the live queue is a reused ring. */
    std::vector<df::TensorId> pendingPrefetch() const
    {
        return { pending_prefetch_.begin() +
                     static_cast<std::ptrdiff_t>(pending_head_),
                 pending_prefetch_.end() };
    }

    /**
     * Demand-eviction victim order at the current layer: the demotion
     * schedule walked backward, minus tensors protected because they
     * are queued or just prefetched for the upcoming interval.
     * Exposed so tests can pin the order evictForSpace() uses.
     */
    std::vector<df::TensorId>
    evictionCandidates(const df::Executor &ex) const;

    /**
     * Static (co-allocation) address assigned to @p id, or ~0 if the
     * tensor is dynamically placed (pool / packed overflow).  Valid
     * after training start; exposed for tests and introspection.
     */
    mem::VirtAddr staticAddress(df::TensorId id) const;

    /**
     * Address-space high-water of the static co-allocation region
     * (bytes past kCoallocBase), valid after training start.  This is
     * the quantity the layout planners compete on: the interval solver
     * must never exceed the greedy per-class packing.
     */
    std::uint64_t layoutFootprint() const { return layout_footprint_; }

    /**
     * Attach a telemetry session (null detaches): interval boundaries,
     * prefetch intents, divergence detections and re-plans are then
     * emitted as structured events, plus monitor counters.
     */
    void setTelemetry(telemetry::Session *session);

    /**
     * Attach a decision audit log (null detaches).  Every prefetch,
     * demand promotion, demotion, demand eviction, pool pin and
     * re-plan then appends one AuditRecord carrying the tensor, the
     * reason code, and the plan context in force — see
     * telemetry/audit.hh.  Records for scheduled migrations share
     * their timestamp with the corresponding Promotion/Demotion
     * telemetry event (the trace-join key).
     */
    void setAudit(telemetry::AuditLog *audit) { audit_ = audit; }
    telemetry::AuditLog *audit() { return audit_; }

  private:
    enum class TrialState {
        Idle,       ///< no Case 3 seen yet
        Pending,    ///< Case 3 seen; trials start next step
        TrialStall, ///< measuring the stall variant
        TrialLeave, ///< measuring the leave-in-slow variant
        Decided,
    };

    void buildStaticLayout(const df::Graph &graph);
    /** Run the planner on @p in and (re)build plan_ + the per-layer
     *  time baseline the divergence monitor compares against. */
    void computePlan(const PlannerInputs &in, std::uint64_t rs_cap);
    /** Mid-training re-plan against the *observed* environment. */
    void replan(df::Executor &ex, int step);
    void issuePrefetch(df::Executor &ex, int interval);
    void stagePrefetches(df::Executor &ex, int interval);
    /**
     * Plan-guided demand eviction: when an allocation cannot fit,
     * demote tensors the plan would evict soon anyway (they are the
     * ones with the most distant next use).  Returns after scheduling;
     * space frees as the transfers land.
     */
    void evictForSpace(df::Executor &ex, std::uint64_t bytes_needed);
    /** Retry queued prefetches (space frees as demotions complete). */
    void drainPrefetchQueue(df::Executor &ex);
    void issueDemotions(df::Executor &ex, int layer);
    bool isPoolPage(mem::PageId page) const;

    /** Migration interval containing the current layer (-1 pre-plan). */
    std::int16_t currentInterval() const;
    /** Append one decision record stamped with the plan context. */
    void auditAppend(df::Executor &ex, telemetry::AuditReason reason,
                     std::uint32_t tensor, std::uint64_t bytes);
    /** Same, at an explicit decision time @p ts (deferred migrations
     *  whose transfer is scheduled later than ex.now()). */
    void auditAppendAt(df::Executor &ex, Tick ts,
                       telemetry::AuditReason reason, std::uint32_t tensor,
                       std::uint64_t bytes);

    const prof::ProfileDatabase &db_;
    SentinelOptions opts_;

    PlannerResult planner_result_;
    MigrationPlan plan_;
    bool planned_ = false;

    // Layout state.
    static constexpr mem::VirtAddr kPreallocBase = 0;
    static constexpr mem::VirtAddr kCoallocBase = 1ull << 44;
    static constexpr mem::VirtAddr kPoolBase = 2ull << 44;
    static constexpr mem::VirtAddr kPackedBase = 3ull << 44;

    std::vector<mem::VirtAddr> static_addr_; ///< per tensor, or kInvalid
    std::uint64_t layout_footprint_ = 0;     ///< co-alloc region bytes
    std::unique_ptr<alloc::ReservedPool> pool_;
    alloc::VirtualArena packed_;
    // Dynamic allocations, dense per tensor id (kInvalidAddr = none):
    // graph ids are compact, so a vector replaces the hash lookups the
    // alloc/free cycle used to pay every tensor birth/death.
    std::vector<mem::VirtAddr> pool_allocs_;
    std::vector<mem::VirtAddr> packed_allocs_;

    // Runtime state.
    /**
     * Prefetch queue: a vector consumed from pending_head_ so pops
     * don't shift, with the dead prefix compacted in place once it
     * outgrows the live tail.  Rotation (retry-later) appends to the
     * back; after warm-up the buffer's capacity is steady and queue
     * traffic allocates nothing.
     */
    std::vector<df::TensorId> pending_prefetch_;
    std::size_t pending_head_ = 0;
    std::vector<mem::PageId> batch_; ///< reused migration batch buffer
    int current_layer_ = 0;
    bool mode_stall_ = true;
    TrialState trial_ = TrialState::Idle;
    Tick step_begin_ = 0;
    Tick trial_stall_time_ = 0;
    int case3_events_ = 0;
    int trial_steps_ = 0;

    // Test-and-trial robustness (S3): perturbations observed during
    // each trial step; a mismatch between the two steps voids the
    // stall-vs-leave comparison and the trial is re-run.
    int perturb_this_step_ = 0;
    int trial_stall_perturb_ = 0;
    int trial_retries_ = 0;

    // Divergence monitor.
    std::vector<Tick> planned_layer_;  ///< per-layer planner estimate
    std::vector<Tick> observed_layer_; ///< per-layer time, current step
    Tick planned_step_time_ = 0;
    Tick layer_begin_ = 0;
    Tick lag_this_step_ = 0;           ///< prefetch lag at interval starts
    int divergent_streak_ = 0;
    int divergence_events_ = 0;
    int replans_ = 0;
    int last_replan_step_ = -1;

    telemetry::Session *telemetry_ = nullptr;
    telemetry::AuditLog *audit_ = nullptr;
    telemetry::Counter *divergence_ctr_ = nullptr;
    telemetry::Counter *replan_ctr_ = nullptr;
    telemetry::Counter *lag_ctr_ = nullptr;
    telemetry::Counter *evict_ctr_ = nullptr;
    telemetry::Counter *blocked_ctr_ = nullptr;

    static constexpr mem::VirtAddr kInvalidAddr = ~0ull;
};

} // namespace sentinel::core

#endif // SENTINEL_CORE_SENTINEL_POLICY_HH
