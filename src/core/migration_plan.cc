#include "core/migration_plan.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sentinel::core {

MigrationPlan
buildMigrationPlan(const prof::ProfileDatabase &db,
                   std::vector<int> starts)
{
    int L = db.numLayers();
    SENTINEL_ASSERT(!starts.empty() && starts.front() == 0,
                    "interval starts must begin with layer 0");
    for (std::size_t i = 1; i < starts.size(); ++i)
        SENTINEL_ASSERT(starts[i] > starts[i - 1] && starts[i] < L,
                        "interval starts must be ascending within the "
                        "step");

    MigrationPlan plan;
    plan.num_intervals = static_cast<int>(starts.size());
    plan.starts = std::move(starts);
    plan.mil = plan.num_intervals > 1 ? plan.starts[1] : L;
    plan.interval_of.assign(static_cast<std::size_t>(L), 0);
    for (int k = 0; k < plan.num_intervals; ++k)
        for (int l = plan.starts[static_cast<std::size_t>(k)];
             l < plan.intervalEnd(k); ++l)
            plan.interval_of[static_cast<std::size_t>(l)] = k;

    plan.prefetch_at.resize(static_cast<std::size_t>(plan.num_intervals));
    plan.demote_at_layer.resize(static_cast<std::size_t>(L));

    // Prefetch lists: at the start of interval k, fetch what interval
    // k+1 (cyclically) touches.
    for (int k = 0; k < plan.num_intervals; ++k) {
        int kn = (k + 1) % plan.num_intervals;
        int next_begin = plan.starts[static_cast<std::size_t>(kn)];
        int next_end = plan.intervalEnd(kn);

        for (df::TensorId id :
             db.longLivedAccessedIn(next_begin, next_end)) {
            const prof::TensorProfile &t = db.tensor(id);
            // Tensors born inside the next interval cannot be
            // prefetched (they do not exist yet).  Everything else is
            // listed; at runtime pages already resident in fast memory
            // are skipped, so tensors kept hot across intervals cost
            // nothing here.
            if (!t.preallocated && t.first_layer >= next_begin &&
                t.first_layer < next_end)
                continue;
            plan.prefetch_at[static_cast<std::size_t>(k)].push_back(id);
        }
        // longLivedAccessedIn already returns hotness-descending order.
    }

    // Demotion lists: for each consecutive pair of access layers
    // (a, b) of a long-lived tensor — cyclically, so the last access
    // of the step pairs with the first access of the next step — the
    // tensor is dead weight in fast memory after layer a if b lies
    // beyond the *next* interval's end.  (Anything needed by the next
    // interval must stay: it was prefetched during this one; evicting
    // it at the boundary would just churn the migration channels.)
    for (const prof::TensorProfile &t : db.tensors()) {
        if (t.short_lived || t.access_layers.empty())
            continue;
        std::size_t n = t.access_layers.size();
        for (std::size_t i = 0; i < n; ++i) {
            int a = t.access_layers[i];
            int ka = plan.intervalOfLayer(a);
            int keep_until = ka + 1 < plan.num_intervals
                                 ? plan.intervalEnd(ka + 1)
                                 : L + plan.intervalEnd(0);
            int next_access;
            if (i + 1 < n) {
                next_access = t.access_layers[i + 1];
            } else if (t.preallocated) {
                // Wraps to the next training step.
                next_access = t.access_layers[0] + L;
            } else {
                continue; // freed after this access anyway
            }
            if (next_access >= keep_until)
                plan.demote_at_layer[static_cast<std::size_t>(a)]
                    .push_back(t.id);
        }
    }

    return plan;
}

MigrationPlan
buildMigrationPlan(const prof::ProfileDatabase &db, int mil)
{
    SENTINEL_ASSERT(mil >= 1, "MIL must be at least 1");
    int L = db.numLayers();
    std::vector<int> starts;
    for (int l = 0; l < L; l += mil)
        starts.push_back(l);
    MigrationPlan plan = buildMigrationPlan(db, std::move(starts));
    plan.mil = mil;
    return plan;
}

} // namespace sentinel::core
