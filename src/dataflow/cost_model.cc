#include "dataflow/cost_model.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace sentinel::df {

Tick
computeTime(const Operation &op, const ExecParams &params)
{
    SENTINEL_ASSERT(params.compute_flops > 0.0, "non-positive FLOP rate");
    double ns = op.flops * 1e9 / params.compute_flops;
    return static_cast<Tick>(ns);
}

Tick
memoryTime(std::uint64_t bytes, double episodes, bool is_write,
           const mem::TierParams &tier)
{
    double bw = is_write ? tier.write_bw : tier.read_bw;
    Tick bandwidth_term = transferTime(bytes, bw);
    Tick lat = is_write ? tier.write_latency : tier.read_latency;
    // Each counted episode is a serialized round-trip to the tier.
    Tick latency_term =
        static_cast<Tick>(std::ceil(episodes) * static_cast<double>(lat));
    return bandwidth_term + latency_term;
}

Tick
opTime(Tick compute, Tick memory, const ExecParams &params)
{
    return std::max(compute, memory) + params.op_overhead;
}

Tick
recomputeTime(const Operation &op, const ExecParams &params)
{
    // Recomputation replays the op's compute with warm inputs; the
    // paper reports it at ~11% of Capuchin's step time.  We charge the
    // compute component plus dispatch.
    return computeTime(op, params) + params.op_overhead;
}

} // namespace sentinel::df
