/**
 * @file
 * Where a tensor lives in the simulated virtual address space.
 *
 * A placement is an address range; the pages it spans are what the OS
 * (and therefore every migration policy) actually manages.  Two
 * tensors whose ranges overlap a page *share* that page — the paper's
 * page-level false sharing arises exactly here.
 */

#ifndef SENTINEL_DATAFLOW_PLACEMENT_HH
#define SENTINEL_DATAFLOW_PLACEMENT_HH

#include <cstdint>
#include <vector>

#include "mem/page.hh"

namespace sentinel::df {

/** The address range assigned to one live tensor. */
struct TensorPlacement {
    mem::VirtAddr addr = 0;
    std::uint64_t bytes = 0;

    mem::PageId firstPage() const { return mem::pageOf(addr); }
    mem::PageId endPage() const { return mem::pageCeil(addr + bytes); }
    std::uint64_t numPages() const { return mem::pagesSpanned(addr, bytes); }

    /** All pages this placement touches, in ascending order. */
    std::vector<mem::PageId>
    pages() const
    {
        std::vector<mem::PageId> out;
        out.reserve(numPages());
        for (mem::PageId p = firstPage(); p < endPage(); ++p)
            out.push_back(p);
        return out;
    }
};

/** A policy's answer to "where should this tensor go?". */
struct AllocDecision {
    /** Start address (policy-chosen layout; may share pages). */
    mem::VirtAddr addr = 0;

    /** Tier newly mapped pages should be backed by. */
    mem::Tier preferred = mem::Tier::Slow;
};

} // namespace sentinel::df

#endif // SENTINEL_DATAFLOW_PLACEMENT_HH
