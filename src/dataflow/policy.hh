/**
 * @file
 * The memory-management policy interface.
 *
 * Everything this reproduction compares — Sentinel itself, IAL,
 * AutoTM, first-touch NUMA, Memory Mode, UM, vDNN, SwapAdvisor,
 * Capuchin, and the fast-only / slow-only references — implements this
 * interface.  The Executor drives a training step and calls back:
 *
 *  - lifecycle hooks (training / step / layer boundaries), where
 *    planned policies schedule prefetches and evictions;
 *  - allocate()/free notifications, where layout policies choose
 *    addresses (and therefore page sharing) and initial tiers;
 *  - onPageAccess(), where reactive page-level policies (IAL, UM,
 *    Memory Mode) migrate on demand and charge critical-path costs.
 *
 * Hooks may charge time to the step through the Executor's charge*
 * methods; they never mutate the clock directly.
 */

#ifndef SENTINEL_DATAFLOW_POLICY_HH
#define SENTINEL_DATAFLOW_POLICY_HH

#include <optional>
#include <string>

#include "common/units.hh"
#include "dataflow/placement.hh"
#include "dataflow/tensor.hh"
#include "mem/page.hh"

namespace sentinel::df {

class Executor;

/** Result of the per-page access hook. */
struct PageAccessResult {
    /**
     * Critical-path cost injected by the policy (demand-fault service,
     * cache-miss fill, ...).  Charged as exposed migration time.
     */
    Tick extra = 0;

    /**
     * If set, the access is served from this tier regardless of the
     * page table (e.g. a Memory-Mode DRAM cache hit, or a page the
     * policy just faulted in synchronously).
     */
    std::optional<mem::Tier> effective;
};

class MemoryPolicy
{
  public:
    virtual ~MemoryPolicy() = default;

    virtual std::string name() const = 0;

    // --- Lifecycle hooks -------------------------------------------------

    /** Called once before any step; preallocated tensors follow. */
    virtual void onTrainingStart(Executor &) {}

    virtual void onStepBegin(Executor &, int /*step*/) {}
    virtual void onStepEnd(Executor &, int /*step*/) {}

    /** Layer boundaries — Sentinel's migration intervals live here. */
    virtual void onLayerBegin(Executor &, int /*layer*/) {}
    virtual void onLayerEnd(Executor &, int /*layer*/) {}

    // --- Allocation -------------------------------------------------------

    /** Choose an address and an initial tier for @p tensor. */
    virtual AllocDecision allocate(Executor &, const TensorDesc &tensor) = 0;

    /** The executor mapped @p tensor at @p placement. */
    virtual void
    onTensorAllocated(Executor &, TensorId, const TensorPlacement &)
    {
    }

    /**
     * @p tensor is being freed; its placement is still valid during
     * this call (so layout state can be recycled).
     */
    virtual void
    onTensorFreed(Executor &, TensorId, const TensorPlacement &)
    {
    }

    /** The last tensor on @p page was freed; the page is unmapping. */
    virtual void onPageUnmapped(Executor &, mem::PageId) {}

    // --- Access ------------------------------------------------------------

    /** Called for every page touched by every op. */
    virtual PageAccessResult
    onPageAccess(Executor &, mem::PageId, bool /*is_write*/)
    {
        return {};
    }

    /**
     * A touched page is in flight toward fast memory.  Return true to
     * stall until it arrives (access then served from fast), false to
     * read it from its source tier.  Sentinel's test-and-trial for
     * Case 3 decides exactly this (Sec. IV-D).
     */
    virtual bool stallForInflight(Executor &, mem::PageId) { return true; }
};

} // namespace sentinel::df

#endif // SENTINEL_DATAFLOW_POLICY_HH
