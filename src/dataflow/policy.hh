/**
 * @file
 * The memory-management policy interface.
 *
 * Everything this reproduction compares — Sentinel itself, IAL,
 * AutoTM, first-touch NUMA, Memory Mode, UM, vDNN, SwapAdvisor,
 * Capuchin, and the fast-only / slow-only references — implements this
 * interface.  The Executor drives a training step and calls back:
 *
 *  - lifecycle hooks (training / step / layer boundaries), where
 *    planned policies schedule prefetches and evictions;
 *  - allocate()/free notifications, where layout policies choose
 *    addresses (and therefore page sharing) and initial tiers;
 *  - onPageAccess(), where reactive page-level policies (IAL, UM,
 *    Memory Mode) migrate on demand and charge critical-path costs.
 *
 * Hooks may charge time to the step through the Executor's charge*
 * methods; they never mutate the clock directly.
 */

#ifndef SENTINEL_DATAFLOW_POLICY_HH
#define SENTINEL_DATAFLOW_POLICY_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/units.hh"
#include "dataflow/placement.hh"
#include "dataflow/tensor.hh"
#include "mem/page.hh"

namespace sentinel::df {

class Executor;

/** Result of the per-page access hook. */
struct PageAccessResult {
    /**
     * Critical-path cost injected by the policy (demand-fault service,
     * cache-miss fill, ...).  Charged as exposed migration time.
     */
    Tick extra = 0;

    /**
     * If set, the access is served from this tier regardless of the
     * page table (e.g. a Memory-Mode DRAM cache hit, or a page the
     * policy just faulted in synchronously).
     */
    std::optional<mem::Tier> effective;
};

/**
 * One policy-resolved segment of a batched range access: the leading
 * @c pages of the range all receive the same treatment.
 */
struct AccessSegment {
    /** Pages covered, counted from the range's first page (>= 1). */
    std::uint64_t pages = 0;

    /** Critical-path cost for the whole segment (sum over its pages). */
    Tick extra = 0;

    /**
     * How many distinct stall events @c extra aggregates (a per-page
     * fault loop collapsed into one segment still counts every fault),
     * so StepStats::num_stalls matches the per-page path exactly.
     */
    std::uint64_t stall_events = 0;

    /** As PageAccessResult::effective, applied to the whole segment. */
    std::optional<mem::Tier> effective;
};

class MemoryPolicy
{
  public:
    virtual ~MemoryPolicy() = default;

    virtual std::string name() const = 0;

    // --- Lifecycle hooks -------------------------------------------------

    /** Called once before any step; preallocated tensors follow. */
    virtual void onTrainingStart(Executor &) {}

    virtual void onStepBegin(Executor &, int /*step*/) {}
    virtual void onStepEnd(Executor &, int /*step*/) {}

    /** Layer boundaries — Sentinel's migration intervals live here. */
    virtual void onLayerBegin(Executor &, int /*layer*/) {}
    virtual void onLayerEnd(Executor &, int /*layer*/) {}

    // --- Allocation -------------------------------------------------------

    /** Choose an address and an initial tier for @p tensor. */
    virtual AllocDecision allocate(Executor &, const TensorDesc &tensor) = 0;

    /** The executor mapped @p tensor at @p placement. */
    virtual void
    onTensorAllocated(Executor &, TensorId, const TensorPlacement &)
    {
    }

    /**
     * @p tensor is being freed; its placement is still valid during
     * this call (so layout state can be recycled).
     */
    virtual void
    onTensorFreed(Executor &, TensorId, const TensorPlacement &)
    {
    }

    /** The last tensor on @p page was freed; the page is unmapping. */
    virtual void onPageUnmapped(Executor &, mem::PageId) {}

    // --- Access ------------------------------------------------------------

    /** Called for every page touched by every op. */
    virtual PageAccessResult
    onPageAccess(Executor &, mem::PageId, bool /*is_write*/)
    {
        return {};
    }

    /**
     * Batched access hook: resolve a prefix of @p run into one or more
     * segments appended to @p out.  The executor re-invokes with the
     * uncovered remainder, so covering a single page is always legal.
     *
     * The default adapter routes exactly one page through
     * onPageAccess(), reproducing the legacy page-by-page interleaving
     * (policy hook, stall, clock advance per page) bit-for-bit — any
     * policy that doesn't override this keeps working unchanged.
     * Policies that override it MUST only batch pages whose treatment
     * cannot depend on the clock advancing between them.
     */
    virtual void onRangeAccess(Executor &ex, mem::PageRun run, bool is_write,
                               std::vector<AccessSegment> &out);

    /**
     * A touched page is in flight toward fast memory.  Return true to
     * stall until it arrives (access then served from fast), false to
     * read it from its source tier.  Sentinel's test-and-trial for
     * Case 3 decides exactly this (Sec. IV-D).
     */
    virtual bool stallForInflight(Executor &, mem::PageId) { return true; }
};

} // namespace sentinel::df

#endif // SENTINEL_DATAFLOW_POLICY_HH
