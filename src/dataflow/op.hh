/**
 * @file
 * Dataflow operations.
 *
 * An operation is a node of the training graph: a primitive (conv,
 * matmul, batch-norm, ...) with a FLOP count and a list of tensor
 * uses.  Each use carries the operation's *main-memory* traffic to
 * that tensor — bytes moved after cache filtering, plus the number of
 * counted access episodes per page, which is what the paper's
 * PTE-poisoning profiler observes.
 */

#ifndef SENTINEL_DATAFLOW_OP_HH
#define SENTINEL_DATAFLOW_OP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "dataflow/tensor.hh"

namespace sentinel::df {

using OpId = std::uint32_t;
constexpr OpId kInvalidOp = ~0u;

/** Primitive kinds; used for reporting and recompute-cost reasoning. */
enum class OpType : std::uint8_t {
    Conv2d,
    ConvBackward,
    MatMul,
    BatchNorm,
    LayerNorm,
    ReLU,
    Pool,
    Softmax,
    Attention,
    LstmCell,
    Embedding,
    EltwiseAdd,
    Concat,
    Transpose,
    Pad,
    Dropout,
    Loss,
    SgdUpdate,
    Other,
};

const char *opTypeName(OpType t);

/** One operation's use of one tensor. */
struct TensorUse {
    TensorId tensor = kInvalidTensor;
    bool is_write = false;

    /**
     * Bytes this operation moves between the tensor and main memory
     * (post cache filtering).  For a streamed activation this is about
     * the tensor size; for a cache-resident small parameter it can be
     * far less than `episodes * bytes`.
     */
    std::uint64_t traffic_bytes = 0;

    /**
     * Counted main-memory access episodes per page of the tensor —
     * what the poisoned-PTE fault handler sees.  Hot small tensors
     * have large values (touched again and again across the layer);
     * streamed tensors have ~1.
     */
    double episodes_per_page = 1.0;
};

/** One node of the dataflow graph. */
struct Operation {
    OpId id = kInvalidOp;
    std::string name;
    OpType type = OpType::Other;

    /** Layer this operation belongs to (the paper's management unit). */
    int layer = -1;

    /** Floating-point work; drives the compute component of op time. */
    double flops = 0.0;

    std::vector<TensorUse> uses;

    /** Convenience: sum of traffic over all uses. */
    std::uint64_t
    totalTraffic() const
    {
        std::uint64_t total = 0;
        for (const auto &u : uses)
            total += u.traffic_bytes;
        return total;
    }
};

} // namespace sentinel::df

#endif // SENTINEL_DATAFLOW_OP_HH
