#include "dataflow/policy.hh"

namespace sentinel::df {

void
MemoryPolicy::onRangeAccess(Executor &ex, mem::PageRun run, bool is_write,
                            std::vector<AccessSegment> &out)
{
    // Per-page adapter: one page per invocation, through the legacy
    // hook.  The executor's range walk then degenerates to the exact
    // page-by-page sequence un-batched policies were written against.
    PageAccessResult r = onPageAccess(ex, run.first, is_write);
    AccessSegment seg;
    seg.pages = 1;
    seg.extra = r.extra;
    seg.stall_events = r.extra > 0 ? 1 : 0;
    seg.effective = r.effective;
    out.push_back(seg);
}

} // namespace sentinel::df
