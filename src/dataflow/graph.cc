#include "dataflow/graph.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sentinel::df {

const char *
tensorKindName(TensorKind k)
{
    switch (k) {
      case TensorKind::Weight: return "weight";
      case TensorKind::WeightGrad: return "weight-grad";
      case TensorKind::Activation: return "activation";
      case TensorKind::ActivationGrad: return "activation-grad";
      case TensorKind::Temp: return "temp";
      case TensorKind::Input: return "input";
      case TensorKind::Optimizer: return "optimizer";
    }
    return "?";
}

const char *
opTypeName(OpType t)
{
    switch (t) {
      case OpType::Conv2d: return "conv2d";
      case OpType::ConvBackward: return "conv2d-bwd";
      case OpType::MatMul: return "matmul";
      case OpType::BatchNorm: return "batchnorm";
      case OpType::LayerNorm: return "layernorm";
      case OpType::ReLU: return "relu";
      case OpType::Pool: return "pool";
      case OpType::Softmax: return "softmax";
      case OpType::Attention: return "attention";
      case OpType::LstmCell: return "lstm-cell";
      case OpType::Embedding: return "embedding";
      case OpType::EltwiseAdd: return "add";
      case OpType::Concat: return "concat";
      case OpType::Transpose: return "transpose";
      case OpType::Pad: return "pad";
      case OpType::Dropout: return "dropout";
      case OpType::Loss: return "loss";
      case OpType::SgdUpdate: return "sgd-update";
      case OpType::Other: return "other";
    }
    return "?";
}

TensorId
Graph::addTensor(std::string name, std::uint64_t bytes, TensorKind kind,
                 bool preallocated)
{
    SENTINEL_ASSERT(!finalized_, "addTensor() after finalize()");
    SENTINEL_ASSERT(bytes > 0, "tensor '%s' has zero size", name.c_str());
    TensorDesc t;
    t.id = static_cast<TensorId>(tensors_.size());
    t.name = std::move(name);
    t.bytes = bytes;
    t.kind = kind;
    t.preallocated = preallocated;
    tensors_.push_back(std::move(t));
    return tensors_.back().id;
}

OpId
Graph::addOp(std::string name, OpType type, int layer, double flops,
             std::vector<TensorUse> uses)
{
    SENTINEL_ASSERT(!finalized_, "addOp() after finalize()");
    SENTINEL_ASSERT(layer >= 0, "op '%s' has negative layer", name.c_str());
    SENTINEL_ASSERT(!uses.empty(), "op '%s' uses no tensors", name.c_str());
    for (const auto &u : uses) {
        SENTINEL_ASSERT(u.tensor < tensors_.size(),
                        "op '%s' references unknown tensor %u", name.c_str(),
                        u.tensor);
        SENTINEL_ASSERT(u.episodes_per_page > 0.0,
                        "op '%s' has non-positive episode count",
                        name.c_str());
    }
    Operation op;
    op.id = static_cast<OpId>(ops_.size());
    op.name = std::move(name);
    op.type = type;
    op.layer = layer;
    op.flops = flops;
    op.uses = std::move(uses);
    ops_.push_back(std::move(op));
    num_layers_ = std::max(num_layers_, layer + 1);
    return ops_.back().id;
}

void
Graph::finalize()
{
    SENTINEL_ASSERT(!finalized_, "finalize() called twice");
    SENTINEL_ASSERT(!ops_.empty(), "graph '%s' has no operations",
                    name_.c_str());

    // Operations must already be in execution order; layers must be
    // non-decreasing so that "end of layer" is a well-defined point in
    // the op sequence (the add_layer() annotation of the paper).
    for (std::size_t i = 1; i < ops_.size(); ++i) {
        SENTINEL_ASSERT(ops_[i].layer >= ops_[i - 1].layer,
                        "op '%s' (layer %d) appears after layer %d",
                        ops_[i].name.c_str(), ops_[i].layer,
                        ops_[i - 1].layer);
    }

    ops_by_layer_.assign(static_cast<std::size_t>(num_layers_), {});
    for (const auto &op : ops_)
        ops_by_layer_[static_cast<std::size_t>(op.layer)].push_back(op.id);
    for (int l = 0; l < num_layers_; ++l) {
        SENTINEL_ASSERT(!ops_by_layer_[static_cast<std::size_t>(l)].empty(),
                        "graph '%s': layer %d has no operations",
                        name_.c_str(), l);
    }

    // Derive lifetimes from references.
    for (const auto &op : ops_) {
        for (const auto &u : op.uses) {
            TensorDesc &t = tensors_[u.tensor];
            if (t.first_op < 0) {
                t.first_op = static_cast<int>(op.id);
                t.first_layer = op.layer;
            }
            t.last_op = static_cast<int>(op.id);
            t.last_layer = op.layer;
        }
    }

    born_at_op_.assign(ops_.size(), {});
    dying_at_op_.assign(ops_.size(), {});
    for (const auto &t : tensors_) {
        if (t.preallocated) {
            preallocated_.push_back(t.id);
            continue;
        }
        SENTINEL_ASSERT(t.first_op >= 0,
                        "tensor '%s' is never referenced by any op",
                        t.name.c_str());
        born_at_op_[static_cast<std::size_t>(t.first_op)].push_back(t.id);
        dying_at_op_[static_cast<std::size_t>(t.last_op)].push_back(t.id);
    }

    finalized_ = true;
    validate();
}

void
Graph::validate() const
{
    // Preallocated tensors must actually be used; otherwise the model
    // builder made a mistake that would silently skew peak memory.
    for (TensorId id : preallocated_) {
        const TensorDesc &t = tensors_[id];
        SENTINEL_ASSERT(t.first_op >= 0,
                        "preallocated tensor '%s' is never used",
                        t.name.c_str());
    }
}

std::span<const OpId>
Graph::opsInLayer(int layer) const
{
    SENTINEL_ASSERT(finalized_, "graph not finalized");
    SENTINEL_ASSERT(layer >= 0 && layer < num_layers_, "bad layer %d",
                    layer);
    return ops_by_layer_[static_cast<std::size_t>(layer)];
}

std::uint64_t
Graph::peakMemoryBytes() const
{
    SENTINEL_ASSERT(finalized_, "graph not finalized");
    std::uint64_t live = preallocatedBytes();
    std::uint64_t peak = live;
    for (const auto &op : ops_) {
        for (TensorId id : born_at_op_[op.id])
            live += tensors_[id].bytes;
        peak = std::max(peak, live);
        for (TensorId id : dying_at_op_[op.id])
            live -= tensors_[id].bytes;
    }
    return peak;
}

std::uint64_t
Graph::peakShortLivedBytes() const
{
    SENTINEL_ASSERT(finalized_, "graph not finalized");
    std::uint64_t live = 0;
    std::uint64_t peak = 0;
    for (const auto &op : ops_) {
        for (TensorId id : born_at_op_[op.id])
            if (tensors_[id].shortLived())
                live += tensors_[id].bytes;
        peak = std::max(peak, live);
        for (TensorId id : dying_at_op_[op.id])
            if (tensors_[id].shortLived())
                live -= tensors_[id].bytes;
    }
    return peak;
}

std::uint64_t
Graph::preallocatedBytes() const
{
    std::uint64_t total = 0;
    for (TensorId id : preallocated_)
        total += tensors_[id].bytes;
    return total;
}

std::uint64_t
Graph::largestTensorBytes() const
{
    std::uint64_t largest = 0;
    for (const auto &t : tensors_)
        largest = std::max(largest, t.bytes);
    return largest;
}

std::span<const TensorId>
Graph::tensorsBornAtOp(OpId op) const
{
    SENTINEL_ASSERT(finalized_ && op < ops_.size(), "bad op id %u", op);
    return born_at_op_[op];
}

std::span<const TensorId>
Graph::tensorsDyingAtOp(OpId op) const
{
    SENTINEL_ASSERT(finalized_ && op < ops_.size(), "bad op id %u", op);
    return dying_at_op_[op];
}

std::span<const TensorId>
Graph::preallocatedTensors() const
{
    SENTINEL_ASSERT(finalized_, "graph not finalized");
    return preallocated_;
}

} // namespace sentinel::df
