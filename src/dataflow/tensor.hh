/**
 * @file
 * Tensor descriptors.
 *
 * The paper's characterization (Sec. III) classifies tensors along
 * three axes that fully determine how Sentinel treats them:
 *
 *  - size       (small = fits in one page, Observation 1),
 *  - lifetime   (short-lived = alive within a single layer),
 *  - hotness    (main-memory accesses per page, Observation 2).
 *
 * Tensor *values* never matter to memory management, so tensors here
 * are pure descriptors: a size, a kind, and a lifetime derived from
 * the operations that reference them.
 */

#ifndef SENTINEL_DATAFLOW_TENSOR_HH
#define SENTINEL_DATAFLOW_TENSOR_HH

#include <cstdint>
#include <string>

#include "mem/page.hh"

namespace sentinel::df {

using TensorId = std::uint32_t;
constexpr TensorId kInvalidTensor = ~0u;

/** Role of a tensor in training; drives default access behaviour. */
enum class TensorKind : std::uint8_t {
    Weight,         ///< model parameter, allocated before training
    WeightGrad,     ///< parameter gradient, lives fwd-layer..update
    Activation,     ///< layer output kept for the backward pass
    ActivationGrad, ///< backward error signal
    Temp,           ///< intra-operation scratch (im2col, padding, ...)
    Input,          ///< training batch, allocated before training
    Optimizer,      ///< optimizer state (momentum etc.)
};

const char *tensorKindName(TensorKind k);

/** Static description of one tensor. */
struct TensorDesc {
    TensorId id = kInvalidTensor;
    std::string name;
    std::uint64_t bytes = 0;
    TensorKind kind = TensorKind::Temp;

    /**
     * Preallocated tensors (weights, inputs, optimizer state) exist
     * before the first training step.  Sentinel cannot re-organize them
     * mid-training (that would create wild pointers, Sec. IV-B); it
     * only guarantees they do not share pages.
     */
    bool preallocated = false;

    // ---- Filled in by Graph::finalize() -------------------------------

    /** First / last layer whose operations reference this tensor. */
    int first_layer = -1;
    int last_layer = -1;

    /** Global op-sequence indices of the first / last referencing op. */
    int first_op = -1;
    int last_op = -1;

    /** Lifetime in layers (paper definition: layers where alive). */
    int
    lifetimeLayers() const
    {
        return last_layer - first_layer + 1;
    }

    /** Short-lived: lifetime no longer than one layer (Sec. III-B). */
    bool
    shortLived() const
    {
        return !preallocated && lifetimeLayers() <= 1;
    }

    /** Small: smaller than one page (Observation 1). */
    bool
    small() const
    {
        return bytes < mem::kPageSize;
    }

    /** Footprint rounded up to whole pages (page-aligned profiling). */
    std::uint64_t
    pageAlignedBytes() const
    {
        return mem::roundUpToPages(bytes);
    }
};

} // namespace sentinel::df

#endif // SENTINEL_DATAFLOW_TENSOR_HH
