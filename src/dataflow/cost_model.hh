/**
 * @file
 * Timing model for operation execution.
 *
 * Per-op time is `max(compute, memory) + dispatch overhead`: the
 * compute pipeline and the memory system overlap, so an op is bound by
 * whichever is slower.  The memory component depends on *where each
 * accessed page resides* — that is the entire lever every policy in
 * this reproduction pulls.
 */

#ifndef SENTINEL_DATAFLOW_COST_MODEL_HH
#define SENTINEL_DATAFLOW_COST_MODEL_HH

#include "common/units.hh"
#include "dataflow/op.hh"
#include "mem/tier.hh"

namespace sentinel::df {

/** Compute-device description. */
struct ExecParams {
    /** Sustained FLOP/s of the training device. */
    double compute_flops = 1.0e12;

    /** Per-operation dispatch overhead (framework + kernel launch). */
    Tick op_overhead = 2 * kUsec;
};

/** The compute component of one op. */
Tick computeTime(const Operation &op, const ExecParams &params);

/**
 * The memory component of moving @p bytes to/from a tier, given the
 * per-page episode count @p episodes (episodes pay the tier's access
 * latency on top of bandwidth; this is what makes slow memory hurt
 * hot, latency-bound tensors more than streamed ones).
 */
Tick memoryTime(std::uint64_t bytes, double episodes, bool is_write,
                const mem::TierParams &tier);

/** Combine compute and memory components into op time. */
Tick opTime(Tick compute, Tick memory, const ExecParams &params);

/** Time to recompute @p op (Capuchin's alternative to swapping). */
Tick recomputeTime(const Operation &op, const ExecParams &params);

} // namespace sentinel::df

#endif // SENTINEL_DATAFLOW_COST_MODEL_HH
