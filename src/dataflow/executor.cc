#include "dataflow/executor.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace sentinel::df {

Executor::Executor(const Graph &graph, mem::HeterogeneousMemory &hm,
                   ExecParams params, MemoryPolicy &policy)
    : graph_(graph), hm_(hm), params_(params), policy_(policy)
{
    SENTINEL_ASSERT(graph_.finalized(), "graph must be finalized");
    placements_.resize(graph_.numTensors());
    live_.assign(graph_.numTensors(), 0);
}

bool
Executor::isAllocated(TensorId id) const
{
    return id < live_.size() && live_[id] != 0;
}

const TensorPlacement &
Executor::placementOf(TensorId id) const
{
    SENTINEL_ASSERT(isAllocated(id), "placementOf() of unallocated tensor %u",
                    id);
    return placements_[id];
}

int
Executor::pageRefCount(mem::PageId page) const
{
    return page_refs_.get(page);
}

void
Executor::setTelemetry(telemetry::Session *session)
{
    telemetry_ = session;
    if (session) {
        telemetry::MetricRegistry &m = session->metrics();
        fast_bytes_ctr_ = &m.counter("exec.bytes_fast");
        slow_bytes_ctr_ = &m.counter("exec.bytes_slow");
        fast_peak_gauge_ = &m.gauge("mem.fast_peak_bytes");
        stall_hist_ = &m.histogram("exec.stall_ns");
        op_hist_ = &m.histogram("exec.op_ns");
        board_ = session->stepBoard();
    } else {
        fast_bytes_ctr_ = nullptr;
        slow_bytes_ctr_ = nullptr;
        fast_peak_gauge_ = nullptr;
        stall_hist_ = nullptr;
        op_hist_ = nullptr;
        board_ = nullptr;
    }
}

void
Executor::chargeExposed(Tick t)
{
    chargeExposedEvents(t, t > 0 ? 1 : 0);
}

void
Executor::chargeExposedEvents(Tick t, std::uint64_t events)
{
    SENTINEL_ASSERT(t >= 0, "negative exposed charge");
    if (t == 0 && events == 0)
        return;
    if (telemetry_ && t > 0) {
        telemetry_->emit(telemetry::EventType::Stall, now_, t, 0,
                         static_cast<std::uint32_t>(step_counter_));
        stall_hist_->record(static_cast<std::uint64_t>(t));
    }
    now_ += t;
    stats_.exposed_migration += t;
    stats_.num_stalls += events;
    if (attr_)
        attr_->chargeExposed(t, events);
}

void
Executor::stallUntil(Tick t)
{
    if (t > now_)
        chargeExposed(t - now_);
}

void
Executor::chargePolicy(Tick t)
{
    SENTINEL_ASSERT(t >= 0, "negative policy charge");
    if (telemetry_ && t > 0)
        telemetry_->emit(telemetry::EventType::PolicyDecision, now_, t, 0,
                         static_cast<std::uint32_t>(step_counter_));
    now_ += t;
    stats_.policy_time += t;
    if (attr_)
        attr_->chargePolicy(t);
}

void
Executor::chargeRecompute(Tick t)
{
    SENTINEL_ASSERT(t >= 0, "negative recompute charge");
    now_ += t;
    stats_.recompute_time += t;
    if (attr_)
        attr_->chargeRecompute(t);
}

void
Executor::allocateTensor(TensorId id)
{
    SENTINEL_ASSERT(!isAllocated(id), "tensor %u allocated twice", id);
    const TensorDesc &t = graph_.tensor(id);
    // Stalls raised while the policy makes room (evict-for-space waits)
    // are charged to the tensor being allocated, not the last accessed.
    if (attr_)
        attr_->beginAlloc(id);
    AllocDecision dec = policy_.allocate(*this, t);

    TensorPlacement pl{ dec.addr, t.bytes };
    // Map freshly-referenced pages as maximal contiguous runs: one
    // reservation/insert batch per run instead of one per page.
    mem::PageId run_start = mem::kInvalidPage;
    auto flush = [&](mem::PageId end_excl) {
        if (run_start == mem::kInvalidPage)
            return;
        std::uint64_t n = end_excl - run_start;
        hm_.mapRange(run_start, n, dec.preferred);
        if (tracker_)
            tracker_->trackRange(run_start, n);
        run_start = mem::kInvalidPage;
    };
    for (mem::PageId p = pl.firstPage(); p < pl.endPage(); ++p) {
        if (++page_refs_.ref(p) == 1) {
            if (run_start == mem::kInvalidPage)
                run_start = p;
        } else {
            flush(p);
        }
    }
    flush(pl.endPage());
    placements_[id] = pl;
    live_[id] = 1;
    notePeakFastUsage();
    policy_.onTensorAllocated(*this, id, pl);
    if (attr_)
        attr_->endAlloc();
}

void
Executor::freeTensor(TensorId id)
{
    SENTINEL_ASSERT(isAllocated(id), "freeing unallocated tensor %u", id);
    TensorPlacement pl = placements_[id];
    policy_.onTensorFreed(*this, id, pl);
    mem::PageId run_start = mem::kInvalidPage;
    auto flush = [&](mem::PageId end_excl) {
        if (run_start == mem::kInvalidPage)
            return;
        std::uint64_t n = end_excl - run_start;
        if (tracker_)
            tracker_->untrackRange(run_start, n);
        hm_.unmapRange(run_start, n, now_);
        run_start = mem::kInvalidPage;
    };
    for (mem::PageId p = pl.firstPage(); p < pl.endPage(); ++p) {
        std::int32_t &ref = page_refs_.ref(p);
        SENTINEL_ASSERT(ref > 0, "page refcount underflow");
        if (--ref == 0) {
            policy_.onPageUnmapped(*this, p);
            if (run_start == mem::kInvalidPage)
                run_start = p;
        } else {
            flush(p);
        }
    }
    flush(pl.endPage());
    live_[id] = 0;
}

void
Executor::notePeakFastUsage()
{
    stats_.peak_fast_used =
        std::max(stats_.peak_fast_used, hm_.tier(mem::Tier::Fast).used());
    for (unsigned t = 0; t < hm_.numTiers(); ++t)
        stats_.peak_tier_used[t] = std::max(
            stats_.peak_tier_used[t], hm_.tier(mem::makeTier(t)).used());
    if (telemetry_)
        fast_peak_gauge_->noteMax(hm_.tier(mem::Tier::Fast).used());
}

void
Executor::accountPages(mem::Tier tier, std::uint64_t idx, std::uint64_t n,
                       UseTraffic tr, const TensorUse &use, TensorKind kind,
                       Tick *mem_total)
{
    // Remainder distribution: pages [0, rem) carry q+1 bytes, the rest
    // q, so the per-use total is exactly use.traffic_bytes.
    std::uint64_t fat =
        idx < tr.rem ? std::min<std::uint64_t>(n, tr.rem - idx) : 0;
    std::uint64_t lean = n - fat;
    std::uint64_t bytes = tr.q * n + fat;
    const mem::TierParams &tp = hm_.tierParams(tier);
    if (fat > 0)
        *mem_total += static_cast<Tick>(fat) *
                      memoryTime(tr.q + 1, use.episodes_per_page,
                                 use.is_write, tp);
    if (lean > 0)
        *mem_total += static_cast<Tick>(lean) *
                      memoryTime(tr.q, use.episodes_per_page, use.is_write,
                                 tp);
    if (tier == mem::Tier::Fast) {
        stats_.bytes_fast += bytes;
        if (telemetry_)
            fast_bytes_ctr_->add(bytes);
    } else {
        stats_.bytes_slow += bytes;
        stats_.addSlowBytes(kind, bytes);
        if (telemetry_)
            slow_bytes_ctr_->add(bytes);
    }
    if (trace_)
        trace_->record(mem::tierName(tier), now_, bytes);
}

void
Executor::execUsePerPage(const TensorUse &use, const TensorPlacement &pl,
                         UseTraffic tr, TensorKind kind, Tick *mem_total)
{
    std::uint64_t episodes = static_cast<std::uint64_t>(
        std::max<std::int64_t>(1, std::llround(use.episodes_per_page)));

    std::uint64_t idx = 0;
    for (mem::PageId p = pl.firstPage(); p < pl.endPage(); ++p, ++idx) {
        PageAccessResult r = policy_.onPageAccess(*this, p, use.is_write);
        if (r.extra > 0)
            chargeExposed(r.extra);

        mem::Tier tier;
        if (r.effective) {
            tier = *r.effective;
        } else {
            if (hm_.inFlight(p, now_)) {
                // Only transfers toward faster memory are worth
                // stalling for; a demotion in flight still serves
                // reads from its (faster) source.
                mem::HeterogeneousMemory::FlightInfo fi =
                    hm_.flightInfo(p);
                if (fi.toward_fast &&
                    policy_.stallForInflight(*this, p)) {
                    if (attr_)
                        attr_->setStallLink(fi.link);
                    stallUntil(hm_.arrivalTime(p));
                    if (attr_)
                        attr_->setStallLink(0);
                }
            }
            tier = hm_.residentTier(p, now_);
        }

        accountPages(tier, idx, 1, tr, use, kind, mem_total);

        if (tracker_) {
            Tick fault = tracker_->onAccess(p, use.is_write, episodes);
            if (fault > 0) {
                if (telemetry_)
                    telemetry_->emit(telemetry::EventType::ProfilingFault,
                                     now_, fault, 0,
                                     static_cast<std::uint32_t>(p));
                now_ += fault;
                stats_.fault_overhead += fault;
                if (attr_)
                    attr_->chargeFault(fault);
            }
        }
    }
}

void
Executor::execUseRanges(const TensorUse &use, const TensorPlacement &pl,
                        UseTraffic tr, TensorKind kind, Tick *mem_total)
{
    const mem::PageId first = pl.firstPage();
    const mem::PageId end = pl.endPage();
    mem::PageId pos = first;
    while (pos < end) {
        seg_buf_.clear();
        policy_.onRangeAccess(*this, mem::PageRun{ pos, end - pos },
                              use.is_write, seg_buf_);
        SENTINEL_ASSERT(!seg_buf_.empty(),
                        "onRangeAccess covered no pages (tensor %u)",
                        use.tensor);
        for (const AccessSegment &seg : seg_buf_) {
            SENTINEL_ASSERT(seg.pages > 0 && pos + seg.pages <= end,
                            "bad access segment (%llu pages at %llu)",
                            static_cast<unsigned long long>(seg.pages),
                            static_cast<unsigned long long>(pos));
            if (seg.extra > 0 || seg.stall_events > 0)
                chargeExposedEvents(seg.extra, seg.stall_events);
            if (seg.effective) {
                accountPages(*seg.effective, pos - first, seg.pages, tr,
                             use, kind, mem_total);
                pos += seg.pages;
                continue;
            }
            std::uint64_t left = seg.pages;
            while (left > 0) {
                mem::PageRunState rs = hm_.residentRange(pos, left, now_);
                if (!rs.in_flight) {
                    // The fast path: one charge for the whole run.
                    accountPages(rs.tier, pos - first, rs.count, tr, use,
                                 kind, mem_total);
                    pos += rs.count;
                    left -= rs.count;
                    continue;
                }
                // Migration boundary: resolve page by page, since each
                // page has its own arrival and a stall here can land
                // later pages' transfers (changing their state).
                mem::HeterogeneousMemory::FlightInfo fi =
                    hm_.flightInfo(pos);
                if (fi.toward_fast &&
                    policy_.stallForInflight(*this, pos)) {
                    if (attr_)
                        attr_->setStallLink(fi.link);
                    stallUntil(hm_.arrivalTime(pos));
                    if (attr_)
                        attr_->setStallLink(0);
                }
                accountPages(hm_.residentTier(pos, now_), pos - first, 1,
                             tr, use, kind, mem_total);
                pos += 1;
                left -= 1;
            }
        }
    }
}

void
Executor::execOp(const Operation &op)
{
    Tick compute = computeTime(op, params_);
    double traffic_scale = 1.0;
    if (chaos_) {
        compute = static_cast<Tick>(
            static_cast<double>(compute) *
            chaos_->computeScale(current_layer_));
        traffic_scale = chaos_->trafficScale();
    }
    Tick mem_total = 0;
    Tick op_start = now_;

    if (telemetry_)
        telemetry_->emit(telemetry::EventType::OpBegin, now_, 0,
                         op.totalTraffic(), op.id);

    for (const TensorUse &use : op.uses) {
        if (attr_)
            attr_->setAccessTensor(use.tensor);
        const TensorPlacement &pl = placementOf(use.tensor);
        std::uint64_t npages = pl.numPages();
        SENTINEL_ASSERT(npages > 0, "empty placement for tensor %u",
                        use.tensor);
        std::uint64_t traffic = use.traffic_bytes;
        if (traffic_scale != 1.0)
            traffic = static_cast<std::uint64_t>(
                static_cast<double>(traffic) * traffic_scale);
        UseTraffic tr{ traffic / npages, traffic % npages };
        TensorKind kind = graph_.tensor(use.tensor).kind;

        // Profiling (tracker attached) charges a fault per page, which
        // advances the clock mid-extent — stay on the exact path.
        if (access_mode_ == AccessMode::PerPage || tracker_)
            execUsePerPage(use, pl, tr, kind, &mem_total);
        else
            execUseRanges(use, pl, tr, kind, &mem_total);
    }

    Tick t = opTime(compute, mem_total, params_);
    now_ += t;
    stats_.compute_time += compute;
    stats_.mem_time += mem_total;
    if (attr_) {
        attr_->setAccessTensor(telemetry::kAttrNoTensor);
        attr_->chargeExecution(t);
    }
    if (telemetry_) {
        telemetry_->emit(telemetry::EventType::OpEnd, now_, 0, 0, op.id);
        op_hist_->record(static_cast<std::uint64_t>(now_ - op_start));
    }
    notePeakFastUsage();
}

StepStats
Executor::runStep()
{
    stats_ = StepStats{};
    stats_.step = step_counter_;
    Tick step_start = now_;
    if (attr_)
        attr_->beginStep(step_counter_, now_);
    promoted_at_step_start_ = hm_.stats().promoted_bytes;
    demoted_at_step_start_ = hm_.stats().demoted_bytes;

    // Fold and apply this step's faults before anything (including a
    // first-step onTrainingStart) observes the memory system, so a
    // chaos schedule starting at step 0 degrades even the plan.
    if (chaos_) {
        chaos_->beginStep(step_counter_);
        hm_.setMigrationBandwidthScale(chaos_->promoteBwScale(),
                                       chaos_->demoteBwScale());
        for (unsigned t = 0; t < hm_.numTiers(); ++t)
            hm_.setTierCapacityScale(t, chaos_->capacityScale(t));
        const sim::StepStalls &st = chaos_->stepStalls();
        if (st.promote > 0 || st.demote > 0)
            hm_.stallMigration(now_, st.promote, st.demote);
    }

    if (telemetry_)
        telemetry_->emit(telemetry::EventType::StepBegin, now_, 0, 0,
                         static_cast<std::uint32_t>(step_counter_));

    if (!training_started_) {
        policy_.onTrainingStart(*this);
        for (TensorId id : graph_.preallocatedTensors())
            allocateTensor(id);
        training_started_ = true;
    }

    policy_.onStepBegin(*this, step_counter_);

    for (int layer = 0; layer < graph_.numLayers(); ++layer) {
        current_layer_ = layer;
        if (attr_)
            attr_->setLayer(layer);
        policy_.onLayerBegin(*this, layer);
        for (OpId op_id : graph_.opsInLayer(layer)) {
            const Operation &op = graph_.op(op_id);
            for (TensorId id : graph_.tensorsBornAtOp(op_id))
                if (!graph_.tensor(id).preallocated)
                    allocateTensor(id);
            execOp(op);
            for (TensorId id : graph_.tensorsDyingAtOp(op_id))
                if (!graph_.tensor(id).preallocated)
                    freeTensor(id);
        }
        policy_.onLayerEnd(*this, layer);
    }
    current_layer_ = -1;
    if (attr_)
        attr_->setLayer(-1);

    policy_.onStepEnd(*this, step_counter_);

    stats_.step_time = now_ - step_start;
    stats_.promoted_bytes =
        hm_.stats().promoted_bytes - promoted_at_step_start_;
    stats_.demoted_bytes = hm_.stats().demoted_bytes - demoted_at_step_start_;

    if (attr_)
        attr_->endStep(stats_.step_time, stats_.exposed_migration,
                       stats_.policy_time, stats_.fault_overhead,
                       stats_.recompute_time, stats_.num_stalls);

    if (telemetry_)
        telemetry_->emit(telemetry::EventType::StepEnd, now_, 0, 0,
                         static_cast<std::uint32_t>(step_counter_));

    // Feed the live plane at the step boundary.  Rings are sized at
    // board construction, so this keeps the steady state alloc-free.
    if (board_) {
        using telemetry::StepSeries;
        board_->observe(StepSeries::StepTime,
                        static_cast<std::uint64_t>(stats_.step_time),
                        now_);
        board_->observe(StepSeries::ExposedMigration,
                        static_cast<std::uint64_t>(
                            stats_.exposed_migration),
                        now_);
        board_->observe(StepSeries::PolicyTime,
                        static_cast<std::uint64_t>(stats_.policy_time),
                        now_);
        board_->observe(StepSeries::PromotedBytes, stats_.promoted_bytes,
                        now_);
        board_->observe(StepSeries::DemotedBytes, stats_.demoted_bytes,
                        now_);
        board_->observe(StepSeries::SlowBytes, stats_.bytes_slow, now_);
        board_->observe(StepSeries::PeakFastUsed, stats_.peak_fast_used,
                        now_);
        board_->observe(StepSeries::Stalls, stats_.num_stalls, now_);
        board_->endStep(now_);
    }

    ++step_counter_;
    return stats_;
}

std::vector<StepStats>
Executor::run(int n)
{
    std::vector<StepStats> out;
    out.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        out.push_back(runStep());
    return out;
}

} // namespace sentinel::df
