#include "dataflow/executor.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace sentinel::df {

Executor::Executor(const Graph &graph, mem::HeterogeneousMemory &hm,
                   ExecParams params, MemoryPolicy &policy)
    : graph_(graph), hm_(hm), params_(params), policy_(policy)
{
    SENTINEL_ASSERT(graph_.finalized(), "graph must be finalized");
}

bool
Executor::isAllocated(TensorId id) const
{
    return placements_.find(id) != placements_.end();
}

const TensorPlacement &
Executor::placementOf(TensorId id) const
{
    auto it = placements_.find(id);
    SENTINEL_ASSERT(it != placements_.end(),
                    "placementOf() of unallocated tensor %u", id);
    return it->second;
}

int
Executor::pageRefCount(mem::PageId page) const
{
    auto it = page_refs_.find(page);
    return it == page_refs_.end() ? 0 : it->second;
}

void
Executor::setTelemetry(telemetry::Session *session)
{
    telemetry_ = session;
    if (session) {
        telemetry::MetricRegistry &m = session->metrics();
        fast_bytes_ctr_ = &m.counter("exec.bytes_fast");
        slow_bytes_ctr_ = &m.counter("exec.bytes_slow");
        fast_peak_gauge_ = &m.gauge("mem.fast_peak_bytes");
        stall_hist_ = &m.histogram("exec.stall_ns");
        op_hist_ = &m.histogram("exec.op_ns");
    } else {
        fast_bytes_ctr_ = nullptr;
        slow_bytes_ctr_ = nullptr;
        fast_peak_gauge_ = nullptr;
        stall_hist_ = nullptr;
        op_hist_ = nullptr;
    }
}

void
Executor::chargeExposed(Tick t)
{
    SENTINEL_ASSERT(t >= 0, "negative exposed charge");
    if (t == 0)
        return;
    if (telemetry_) {
        telemetry_->emit(telemetry::EventType::Stall, now_, t, 0,
                         static_cast<std::uint32_t>(step_counter_));
        stall_hist_->record(static_cast<std::uint64_t>(t));
    }
    now_ += t;
    stats_.exposed_migration += t;
    stats_.num_stalls += 1;
}

void
Executor::stallUntil(Tick t)
{
    if (t > now_)
        chargeExposed(t - now_);
}

void
Executor::chargePolicy(Tick t)
{
    SENTINEL_ASSERT(t >= 0, "negative policy charge");
    if (telemetry_ && t > 0)
        telemetry_->emit(telemetry::EventType::PolicyDecision, now_, t, 0,
                         static_cast<std::uint32_t>(step_counter_));
    now_ += t;
    stats_.policy_time += t;
}

void
Executor::chargeRecompute(Tick t)
{
    SENTINEL_ASSERT(t >= 0, "negative recompute charge");
    now_ += t;
    stats_.recompute_time += t;
}

void
Executor::allocateTensor(TensorId id)
{
    SENTINEL_ASSERT(!isAllocated(id), "tensor %u allocated twice", id);
    const TensorDesc &t = graph_.tensor(id);
    AllocDecision dec = policy_.allocate(*this, t);

    TensorPlacement pl{ dec.addr, t.bytes };
    for (mem::PageId p = pl.firstPage(); p < pl.endPage(); ++p) {
        if (++page_refs_[p] == 1) {
            hm_.mapPage(p, dec.preferred);
            if (tracker_)
                tracker_->track(p);
        }
    }
    placements_.emplace(id, pl);
    notePeakFastUsage();
    policy_.onTensorAllocated(*this, id, pl);
}

void
Executor::freeTensor(TensorId id)
{
    auto it = placements_.find(id);
    SENTINEL_ASSERT(it != placements_.end(), "freeing unallocated tensor %u",
                    id);
    TensorPlacement pl = it->second;
    policy_.onTensorFreed(*this, id, pl);
    for (mem::PageId p = pl.firstPage(); p < pl.endPage(); ++p) {
        auto ref = page_refs_.find(p);
        SENTINEL_ASSERT(ref != page_refs_.end() && ref->second > 0,
                        "page refcount underflow");
        if (--ref->second == 0) {
            policy_.onPageUnmapped(*this, p);
            if (tracker_)
                tracker_->untrack(p);
            hm_.unmapPage(p, now_);
            page_refs_.erase(ref);
        }
    }
    placements_.erase(it);
}

void
Executor::notePeakFastUsage()
{
    stats_.peak_fast_used =
        std::max(stats_.peak_fast_used, hm_.tier(mem::Tier::Fast).used());
    if (telemetry_)
        fast_peak_gauge_->noteMax(hm_.tier(mem::Tier::Fast).used());
}

void
Executor::execOp(const Operation &op)
{
    Tick compute = computeTime(op, params_);
    Tick mem_total = 0;
    Tick op_start = now_;

    if (telemetry_)
        telemetry_->emit(telemetry::EventType::OpBegin, now_, 0,
                         op.totalTraffic(), op.id);

    for (const TensorUse &use : op.uses) {
        const TensorPlacement &pl = placementOf(use.tensor);
        std::uint64_t npages = pl.numPages();
        SENTINEL_ASSERT(npages > 0, "empty placement for tensor %u",
                        use.tensor);
        std::uint64_t per_page_traffic = use.traffic_bytes / npages;
        std::uint64_t episodes = static_cast<std::uint64_t>(
            std::max<std::int64_t>(1, std::llround(use.episodes_per_page)));

        for (mem::PageId p = pl.firstPage(); p < pl.endPage(); ++p) {
            PageAccessResult r = policy_.onPageAccess(*this, p, use.is_write);
            if (r.extra > 0)
                chargeExposed(r.extra);

            mem::Tier tier;
            if (r.effective) {
                tier = *r.effective;
            } else {
                if (hm_.inFlight(p, now_)) {
                    // Only prefetches toward fast memory are worth
                    // stalling for; a demotion in flight still serves
                    // reads from its (fast) source.
                    bool toward_fast =
                        hm_.residentTier(p, now_) == mem::Tier::Slow;
                    if (toward_fast && policy_.stallForInflight(*this, p))
                        stallUntil(hm_.arrivalTime(p));
                }
                tier = hm_.residentTier(p, now_);
            }

            mem_total += memoryTime(per_page_traffic, use.episodes_per_page,
                                    use.is_write, hm_.tierParams(tier));
            if (tier == mem::Tier::Fast) {
                stats_.bytes_fast += per_page_traffic;
                if (telemetry_)
                    fast_bytes_ctr_->add(per_page_traffic);
            } else {
                stats_.bytes_slow += per_page_traffic;
                stats_.addSlowBytes(graph_.tensor(use.tensor).kind,
                                    per_page_traffic);
                if (telemetry_)
                    slow_bytes_ctr_->add(per_page_traffic);
            }
            if (trace_)
                trace_->record(mem::tierName(tier), now_, per_page_traffic);

            if (tracker_) {
                Tick fault = tracker_->onAccess(p, use.is_write, episodes);
                if (fault > 0) {
                    if (telemetry_)
                        telemetry_->emit(
                            telemetry::EventType::ProfilingFault, now_,
                            fault, 0, static_cast<std::uint32_t>(p));
                    now_ += fault;
                    stats_.fault_overhead += fault;
                }
            }
        }
    }

    Tick t = opTime(compute, mem_total, params_);
    now_ += t;
    stats_.compute_time += compute;
    stats_.mem_time += mem_total;
    if (telemetry_) {
        telemetry_->emit(telemetry::EventType::OpEnd, now_, 0, 0, op.id);
        op_hist_->record(static_cast<std::uint64_t>(now_ - op_start));
    }
    notePeakFastUsage();
}

StepStats
Executor::runStep()
{
    stats_ = StepStats{};
    stats_.step = step_counter_;
    Tick step_start = now_;
    promoted_at_step_start_ = hm_.stats().promoted_bytes;
    demoted_at_step_start_ = hm_.stats().demoted_bytes;

    if (telemetry_)
        telemetry_->emit(telemetry::EventType::StepBegin, now_, 0, 0,
                         static_cast<std::uint32_t>(step_counter_));

    if (!training_started_) {
        policy_.onTrainingStart(*this);
        for (TensorId id : graph_.preallocatedTensors())
            allocateTensor(id);
        training_started_ = true;
    }

    policy_.onStepBegin(*this, step_counter_);

    for (int layer = 0; layer < graph_.numLayers(); ++layer) {
        policy_.onLayerBegin(*this, layer);
        for (OpId op_id : graph_.opsInLayer(layer)) {
            const Operation &op = graph_.op(op_id);
            for (TensorId id : graph_.tensorsBornAtOp(op_id))
                if (!graph_.tensor(id).preallocated)
                    allocateTensor(id);
            execOp(op);
            for (TensorId id : graph_.tensorsDyingAtOp(op_id))
                if (!graph_.tensor(id).preallocated)
                    freeTensor(id);
        }
        policy_.onLayerEnd(*this, layer);
    }

    policy_.onStepEnd(*this, step_counter_);

    stats_.step_time = now_ - step_start;
    stats_.promoted_bytes =
        hm_.stats().promoted_bytes - promoted_at_step_start_;
    stats_.demoted_bytes = hm_.stats().demoted_bytes - demoted_at_step_start_;

    if (telemetry_)
        telemetry_->emit(telemetry::EventType::StepEnd, now_, 0, 0,
                         static_cast<std::uint32_t>(step_counter_));

    ++step_counter_;
    return stats_;
}

std::vector<StepStats>
Executor::run(int n)
{
    std::vector<StepStats> out;
    out.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        out.push_back(runStep());
    return out;
}

} // namespace sentinel::df
