/**
 * @file
 * The static training graph: tensors + operations grouped into layers.
 *
 * One Graph describes one training *step* (forward + backward + update)
 * of one model at one batch size.  Training repeats the step; the
 * paper's entire approach rests on that repetitiveness (Sec. II).
 *
 * Layers are the management granularity: Sentinel defines lifetime and
 * migration intervals in layers, and the add_layer() API annotation in
 * the paper corresponds to the `layer` field on operations here.
 */

#ifndef SENTINEL_DATAFLOW_GRAPH_HH
#define SENTINEL_DATAFLOW_GRAPH_HH

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "dataflow/op.hh"
#include "dataflow/tensor.hh"

namespace sentinel::df {

class Graph
{
  public:
    Graph(std::string name, int batch_size)
        : name_(std::move(name)), batch_size_(batch_size)
    {
    }

    // --- Construction ----------------------------------------------------

    /** Add a tensor; @return its id. */
    TensorId addTensor(std::string name, std::uint64_t bytes,
                       TensorKind kind, bool preallocated = false);

    /** Add an operation; uses must reference existing tensors. */
    OpId addOp(std::string name, OpType type, int layer, double flops,
               std::vector<TensorUse> uses);

    /**
     * Derive lifetimes, bucket ops by layer, and validate the graph.
     * Must be called once after construction; builders do this.
     */
    void finalize();

    bool finalized() const { return finalized_; }

    // --- Structure --------------------------------------------------------

    const std::string &name() const { return name_; }
    int batchSize() const { return batch_size_; }
    int numLayers() const { return num_layers_; }
    std::size_t numTensors() const { return tensors_.size(); }
    std::size_t numOps() const { return ops_.size(); }

    // Inline: the executor calls these per tensor-use per op.
    const TensorDesc &
    tensor(TensorId id) const
    {
        SENTINEL_ASSERT(id < tensors_.size(), "bad tensor id %u", id);
        return tensors_[id];
    }
    const Operation &
    op(OpId id) const
    {
        SENTINEL_ASSERT(id < ops_.size(), "bad op id %u", id);
        return ops_[id];
    }
    const std::vector<TensorDesc> &tensors() const { return tensors_; }
    const std::vector<Operation> &ops() const { return ops_; }

    /** Ids of operations in @p layer, in execution order. */
    std::span<const OpId> opsInLayer(int layer) const;

    // --- Derived quantities -------------------------------------------------

    /**
     * Peak memory consumption of one training step in bytes: the
     * maximum over the op sequence of the total size of live tensors
     * (preallocated tensors are always live).  This is the "peak
     * memory consumption" all of the paper's fast-memory-size ratios
     * refer to.
     */
    std::uint64_t peakMemoryBytes() const;

    /** Peak memory of short-lived tensors only (bound for RS). */
    std::uint64_t peakShortLivedBytes() const;

    /** Sum of bytes of preallocated tensors. */
    std::uint64_t preallocatedBytes() const;

    /** Largest single tensor (for the fast-memory lower bound). */
    std::uint64_t largestTensorBytes() const;

    /** Tensor ids whose first referencing op is @p op. */
    std::span<const TensorId> tensorsBornAtOp(OpId op) const;

    /** Tensor ids whose last referencing op is @p op. */
    std::span<const TensorId> tensorsDyingAtOp(OpId op) const;

    /** All preallocated tensor ids. */
    std::span<const TensorId> preallocatedTensors() const;

  private:
    void validate() const;

    std::string name_;
    int batch_size_;
    int num_layers_ = 0;
    bool finalized_ = false;

    std::vector<TensorDesc> tensors_;
    std::vector<Operation> ops_;
    std::vector<std::vector<OpId>> ops_by_layer_;
    std::vector<std::vector<TensorId>> born_at_op_;
    std::vector<std::vector<TensorId>> dying_at_op_;
    std::vector<TensorId> preallocated_;
};

} // namespace sentinel::df

#endif // SENTINEL_DATAFLOW_GRAPH_HH
