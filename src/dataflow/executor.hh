/**
 * @file
 * The training-step executor: the simulated TensorFlow runtime.
 *
 * Runs a Graph against a HeterogeneousMemory under a MemoryPolicy,
 * producing per-step statistics.  It owns the simulated clock, the
 * tensor -> placement table, and page reference counting (multiple
 * tensors may share a page; the page lives while any of them does).
 *
 * Optional attachments:
 *  - an AccessTracker models the paper's PTE-poisoning profiler
 *    (counts page accesses, charges fault overhead to the step);
 *  - a TraceRecorder captures per-tier traffic for Fig. 9;
 *  - a telemetry::Session records structured events (op/step spans,
 *    stalls, faults) and counters for Chrome-trace/CSV export.
 */

#ifndef SENTINEL_DATAFLOW_EXECUTOR_HH
#define SENTINEL_DATAFLOW_EXECUTOR_HH

#include <cstdint>
#include <vector>

#include "common/units.hh"
#include "dataflow/cost_model.hh"
#include "dataflow/graph.hh"
#include "dataflow/placement.hh"
#include "dataflow/policy.hh"
#include "dataflow/step_stats.hh"
#include "mem/access_tracker.hh"
#include "mem/hm.hh"
#include "mem/page_directory.hh"
#include "sim/fault_injector.hh"
#include "sim/trace.hh"
#include "telemetry/attribution.hh"
#include "telemetry/session.hh"

namespace sentinel::df {

class Executor
{
  public:
    /** How execOp resolves tensor placements (see setAccessMode). */
    enum class AccessMode {
        Range,   ///< walk maximal same-state page runs (production)
        PerPage, ///< legacy page-by-page loop (differential testing)
    };

    Executor(const Graph &graph, mem::HeterogeneousMemory &hm,
             ExecParams params, MemoryPolicy &policy);

    /**
     * Run one training step (forward + backward + update).  The first
     * call triggers onTrainingStart() and allocates preallocated
     * tensors.
     */
    StepStats runStep();

    /** Run @p n steps and return their stats. */
    std::vector<StepStats> run(int n);

    // --- State queried by policies ----------------------------------------

    Tick now() const { return now_; }
    int currentStep() const { return step_counter_; }
    const Graph &graph() const { return graph_; }
    mem::HeterogeneousMemory &hm() { return hm_; }
    const ExecParams &params() const { return params_; }
    StepStats &currentStats() { return stats_; }

    bool isAllocated(TensorId id) const;
    /** Placement of a live tensor (panics if not allocated). */
    const TensorPlacement &placementOf(TensorId id) const;
    /** Number of live tensors overlapping @p page (0 if unmapped). */
    int pageRefCount(mem::PageId page) const;

    /**
     * Select the placement-walk strategy.  Range (the default) charges
     * traffic once per maximal same-tier non-in-flight run; PerPage
     * replays the historical page loop.  Both produce identical
     * StepStats — PerPage exists so tests can prove it.
     */
    void setAccessMode(AccessMode mode) { access_mode_ = mode; }
    AccessMode accessMode() const { return access_mode_; }

    // --- Time charging (policy hooks use these) -----------------------------

    /** Stall the critical path waiting for migration. */
    void chargeExposed(Tick t);
    /** Charge @p t of exposed time covering @p events distinct stalls. */
    void chargeExposedEvents(Tick t, std::uint64_t events);
    /** Stall until absolute time @p t (no-op if already past). */
    void stallUntil(Tick t);
    /** Charge policy decision overhead. */
    void chargePolicy(Tick t);
    /** Charge recomputation time (Capuchin). */
    void chargeRecompute(Tick t);

    // --- Profiling attachments ----------------------------------------------

    void setAccessTracker(mem::AccessTracker *tracker) { tracker_ = tracker; }
    void setTraceRecorder(sim::TraceRecorder *rec) { trace_ = rec; }

    /**
     * Attach a fault injector (null detaches).  At each step's start
     * the executor folds the schedule and applies bandwidth/capacity
     * scales and channel stalls to the memory system; per-op compute
     * and traffic are perturbed inline.  Policies observe the faults
     * only through their effects — exactly like a real runtime whose
     * environment degrades under it.
     */
    void setFaultInjector(sim::FaultInjector *inj) { chaos_ = inj; }
    sim::FaultInjector *faultInjector() { return chaos_; }

    /** Layer currently executing (-1 outside the layer loop). */
    int currentLayer() const { return current_layer_; }

    /**
     * Attach a telemetry session (null detaches).  When attached, the
     * executor emits step/op spans, stall, fault, and policy-decision
     * events and maintains per-tier traffic counters plus a stall
     * latency histogram.  Telemetry never perturbs simulated time:
     * stats with and without a session are bit-identical.
     */
    void setTelemetry(telemetry::Session *session);
    telemetry::Session *telemetry() { return telemetry_; }

    /**
     * Attach a stall-attribution engine (null detaches).  Every
     * simulated-clock advance inside runStep() is reported to the
     * engine classified by cause, together with the layer / tensor /
     * allocation context in force, so the engine can decompose
     * StepStats totals exactly (see telemetry/attribution.hh).  Like
     * telemetry, attribution never perturbs simulated time.
     */
    void setAttribution(telemetry::AttributionEngine *attr) { attr_ = attr; }
    telemetry::AttributionEngine *attribution() { return attr_; }

  private:
    /** Per-use traffic split: page i carries q + (i < rem ? 1 : 0). */
    struct UseTraffic {
        std::uint64_t q = 0;   ///< traffic_bytes / npages
        std::uint64_t rem = 0; ///< traffic_bytes % npages
    };

    void allocateTensor(TensorId id);
    void freeTensor(TensorId id);
    void execOp(const Operation &op);
    void execUsePerPage(const TensorUse &use, const TensorPlacement &pl,
                        UseTraffic tr, TensorKind kind, Tick *mem_total);
    void execUseRanges(const TensorUse &use, const TensorPlacement &pl,
                       UseTraffic tr, TensorKind kind, Tick *mem_total);
    /** Charge traffic/time/telemetry for @p n pages starting at
     *  placement-relative index @p idx, all served from @p tier. */
    void accountPages(mem::Tier tier, std::uint64_t idx, std::uint64_t n,
                      UseTraffic tr, const TensorUse &use, TensorKind kind,
                      Tick *mem_total);
    void notePeakFastUsage();

    const Graph &graph_;
    mem::HeterogeneousMemory &hm_;
    ExecParams params_;
    MemoryPolicy &policy_;

    Tick now_ = 0;
    int step_counter_ = 0;
    bool training_started_ = false;

    StepStats stats_;
    std::uint64_t promoted_at_step_start_ = 0;
    std::uint64_t demoted_at_step_start_ = 0;

    // Dense tensor tables indexed by TensorId (graph ids are compact),
    // and a chunked page directory for refcounts: the executor's own
    // bookkeeping is hash-free and allocation-free in steady state.
    std::vector<TensorPlacement> placements_;
    std::vector<std::uint8_t> live_;
    mem::PageDirectory<std::int32_t> page_refs_;

    AccessMode access_mode_ = AccessMode::Range;
    std::vector<AccessSegment> seg_buf_; ///< reused per onRangeAccess call

    mem::AccessTracker *tracker_ = nullptr;
    sim::TraceRecorder *trace_ = nullptr;
    sim::FaultInjector *chaos_ = nullptr;
    int current_layer_ = -1;

    telemetry::Session *telemetry_ = nullptr;
    telemetry::StepBoard *board_ = nullptr; ///< session's live plane
    telemetry::AttributionEngine *attr_ = nullptr;
    telemetry::Counter *fast_bytes_ctr_ = nullptr;
    telemetry::Counter *slow_bytes_ctr_ = nullptr;
    telemetry::Gauge *fast_peak_gauge_ = nullptr;
    telemetry::Histogram *stall_hist_ = nullptr;
    telemetry::Histogram *op_hist_ = nullptr;
};

} // namespace sentinel::df

#endif // SENTINEL_DATAFLOW_EXECUTOR_HH
