/**
 * @file
 * Per-training-step measurements produced by the Executor.
 *
 * The evaluation section of the paper reports throughput (Figs. 7, 8,
 * 12), exposed migration overhead and recomputation (Fig. 13),
 * migrated volume (Table IV) and bandwidth (Fig. 9); every one of
 * those comes out of the fields below.
 */

#ifndef SENTINEL_DATAFLOW_STEP_STATS_HH
#define SENTINEL_DATAFLOW_STEP_STATS_HH

#include <array>
#include <cstdint>

#include "common/logging.hh"
#include "common/units.hh"
#include "dataflow/tensor.hh"

namespace sentinel::df {

struct StepStats {
    int step = 0;

    /** Wall time of the step (all components included). */
    Tick step_time = 0;

    /** Sum of op compute components (overlaps with mem_time). */
    Tick compute_time = 0;

    /** Sum of op memory components (overlaps with compute_time). */
    Tick mem_time = 0;

    /**
     * Migration overhead exposed on the critical path: stalls waiting
     * for prefetches, on-demand page faults, synchronous tensor moves.
     */
    Tick exposed_migration = 0;

    /** Protection-fault overhead of profiling (profiling step only). */
    Tick fault_overhead = 0;

    /** Recomputation time (Capuchin-style policies only). */
    Tick recompute_time = 0;

    /** Policy decision overhead charged to the step. */
    Tick policy_time = 0;

    /** Access traffic served from each tier. */
    std::uint64_t bytes_fast = 0;
    std::uint64_t bytes_slow = 0;

    /** Number of distinct TensorKind values (array extent below). */
    static constexpr std::size_t kNumTensorKinds = 8;

    /** Slow-tier traffic by tensor kind (indexed by TensorKind). */
    std::array<std::uint64_t, kNumTensorKinds> slow_bytes_by_kind{};

    /** Bounds-checked accumulation into slow_bytes_by_kind. */
    void
    addSlowBytes(TensorKind kind, std::uint64_t bytes)
    {
        auto i = static_cast<std::size_t>(kind);
        SENTINEL_ASSERT(i < kNumTensorKinds, "TensorKind %zu out of range",
                        i);
        slow_bytes_by_kind[i] += bytes;
    }

    /** Bounds-checked read of slow_bytes_by_kind. */
    std::uint64_t
    slowBytesFor(TensorKind kind) const
    {
        auto i = static_cast<std::size_t>(kind);
        SENTINEL_ASSERT(i < kNumTensorKinds, "TensorKind %zu out of range",
                        i);
        return slow_bytes_by_kind[i];
    }

    /** Migration volume during this step. */
    std::uint64_t promoted_bytes = 0;
    std::uint64_t demoted_bytes = 0;

    /** High-water fast-memory occupancy observed during the step. */
    std::uint64_t peak_fast_used = 0;

    /** Chain length the array below can carry (mem::kMaxTiers). */
    static constexpr std::size_t kMaxTierSlots = 8;

    /** High-water occupancy of every chain tier (index = tier index,
     *  fastest first; slot 0 mirrors peak_fast_used).  Unused slots
     *  stay zero. */
    std::array<std::uint64_t, kMaxTierSlots> peak_tier_used{};

    /** Number of stall events (exposed-migration occurrences). */
    std::uint64_t num_stalls = 0;
};

} // namespace sentinel::df

#endif // SENTINEL_DATAFLOW_STEP_STATS_HH
