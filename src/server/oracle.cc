#include "server/oracle.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/rng.hh"

namespace sentinel::server {

namespace {

const char *
platformTag(harness::Platform p)
{
    return p == harness::Platform::Optane ? "cpu" : "gpu";
}

void
violate(harness::OracleReport &rep, const ServerConfig &cfg,
        const std::string &invariant, const std::string &job,
        std::string detail)
{
    rep.violations.push_back(harness::OracleViolation{
        invariant, job, platformTag(cfg.platform), std::move(detail) });
}

/** Field-exact compare of the traffic-bearing parts of two solo step
 *  traces.  Returns a description of the first mismatch, or empty. */
std::string
diffStepTraffic(const std::vector<df::StepStats> &a,
                const std::vector<df::StepStats> &b)
{
    if (a.size() != b.size())
        return strprintf("step count %zu vs %zu", a.size(), b.size());
    for (std::size_t k = 0; k < a.size(); ++k) {
        const df::StepStats &x = a[k];
        const df::StepStats &y = b[k];
        auto diff = [&](const char *field, std::uint64_t u,
                        std::uint64_t v) {
            return strprintf("step %zu %s: %llu vs %llu", k, field,
                             static_cast<unsigned long long>(u),
                             static_cast<unsigned long long>(v));
        };
        if (x.promoted_bytes != y.promoted_bytes)
            return diff("promoted_bytes", x.promoted_bytes,
                        y.promoted_bytes);
        if (x.demoted_bytes != y.demoted_bytes)
            return diff("demoted_bytes", x.demoted_bytes,
                        y.demoted_bytes);
        if (x.bytes_fast != y.bytes_fast)
            return diff("bytes_fast", x.bytes_fast, y.bytes_fast);
        if (x.bytes_slow != y.bytes_slow)
            return diff("bytes_slow", x.bytes_slow, y.bytes_slow);
        if (x.num_stalls != y.num_stalls)
            return diff("num_stalls", x.num_stalls, y.num_stalls);
        if (x.step_time != y.step_time)
            return diff("step_time", static_cast<std::uint64_t>(
                                         x.step_time),
                        static_cast<std::uint64_t>(y.step_time));
        for (std::size_t i = 0; i < df::StepStats::kNumTensorKinds; ++i)
            if (x.slow_bytes_by_kind[i] != y.slow_bytes_by_kind[i])
                return diff("slow_bytes_by_kind", x.slow_bytes_by_kind[i],
                            y.slow_bytes_by_kind[i]);
    }
    return {};
}

} // namespace

harness::OracleReport
runServerOracle(const ServerConfig &cfg, const std::vector<JobSpec> &specs,
                const ServerOracleOptions &opts)
{
    harness::OracleReport rep;

    ServerConfig serial_cfg = cfg;
    serial_cfg.jobs = 1;
    serial_cfg.telemetry = nullptr;
    ServerResult ref = runServer(serial_cfg, specs);

    // --- server-determinism: serial == --jobs N, byte for byte -------
    if (opts.check_determinism && opts.jobs > 1) {
        ServerConfig par_cfg = serial_cfg;
        par_cfg.jobs = opts.jobs;
        ServerResult par = runServer(par_cfg, specs);
        if (ref.summary() != par.summary())
            violate(rep, cfg, "server-determinism", "*",
                    strprintf("summary differs between serial and "
                              "jobs=%d runs",
                              opts.jobs));
        for (std::size_t j = 0;
             j < ref.jobs.size() && j < par.jobs.size(); ++j)
            if (ref.jobs[j].step_durations !=
                par.jobs[j].step_durations)
                violate(rep, cfg, "server-determinism",
                        ref.jobs[j].spec.name,
                        "step-duration trace differs between serial "
                        "and parallel runs");
    }

    // --- per-job checks ----------------------------------------------
    std::uint64_t solo_promoted = 0, solo_demoted = 0;
    for (const JobResult &r : ref.jobs) {
        if (r.status != JobStatus::Completed)
            continue;
        const std::string &job = r.spec.name;

        if (r.admit < r.submit || r.finish < r.admit)
            violate(rep, cfg, "dilation", job,
                    strprintf("non-causal lifecycle: submit %lld, "
                              "admit %lld, finish %lld",
                              static_cast<long long>(r.submit),
                              static_cast<long long>(r.admit),
                              static_cast<long long>(r.finish)));
        for (std::size_t k = 0; k < r.step_durations.size(); ++k)
            if (r.step_durations[k] < r.solo_steps[k].step_time) {
                violate(rep, cfg, "dilation", job,
                        strprintf("step %zu co-located duration %lld "
                                  "< solo %lld",
                                  k,
                                  static_cast<long long>(
                                      r.step_durations[k]),
                                  static_cast<long long>(
                                      r.solo_steps[k].step_time)));
                break;
            }

        for (const df::StepStats &s : r.solo_steps) {
            solo_promoted += s.promoted_bytes;
            solo_demoted += s.demoted_bytes;
        }

        // Independent solo re-run: the server must not have perturbed
        // the job's simulation in any way — identical config in a
        // fresh harness must reproduce the trace bit for bit.
        if (opts.check_solo_rerun) {
            harness::ExperimentConfig ec;
            ec.model = r.spec.model;
            ec.batch = r.spec.batch;
            ec.platform = cfg.platform;
            ec.fast_bytes = r.quota_bytes;
            ec.steps = r.steps;
            ec.warmup = r.warmup;
            ec.chaos = r.spec.chaos;
            ec.chaos_seed = r.spec.chaos_seed;
            harness::StepTrace solo =
                harness::runExperimentSteps(ec, r.spec.policy);
            std::string d = diffStepTraffic(r.solo_steps, solo.steps);
            if (!d.empty())
                violate(rep, cfg, "job-traffic", job,
                        "co-located trace diverges from solo re-run: " +
                            d);
        }
    }

    // --- node-conservation -------------------------------------------
    if (ref.promoted_bytes != solo_promoted ||
        ref.demoted_bytes != solo_demoted)
        violate(rep, cfg, "node-conservation", "*",
                strprintf("node DMA totals %llu/%llu != solo sums "
                          "%llu/%llu",
                          static_cast<unsigned long long>(
                              ref.promoted_bytes),
                          static_cast<unsigned long long>(
                              ref.demoted_bytes),
                          static_cast<unsigned long long>(solo_promoted),
                          static_cast<unsigned long long>(solo_demoted)));

    // --- capacity ----------------------------------------------------
    std::uint64_t limit = std::max(
        static_cast<std::uint64_t>(
            static_cast<double>(cfg.fast_bytes) * cfg.headroom),
        cfg.fast_bytes);
    if (ref.peak_committed > limit)
        violate(rep, cfg, "capacity", "*",
                strprintf("peak committed %llu exceeds admission "
                          "limit %llu",
                          static_cast<unsigned long long>(
                              ref.peak_committed),
                          static_cast<unsigned long long>(limit)));

    return rep;
}

std::vector<JobSpec>
randomColocation(std::uint64_t seed, int njobs)
{
    SENTINEL_ASSERT(njobs > 0, "co-location needs at least one job");
    Rng rng(seed ^ 0x5e97e12ull);

    // Light zoo members only: the oracle re-runs every job solo, so a
    // bert_large or mobilenet cell would dominate the whole check's
    // runtime (their peaks are 10-100x the CIFAR ResNets').
    static const char *const kZoo[] = { "resnet20", "resnet32" };
    static const char *const kPolicies[] = { "sentinel", "sentinel",
                                             "sentinel", "ial", "numa" };

    std::vector<JobSpec> specs;
    for (int i = 0; i < njobs; ++i) {
        JobSpec s;
        if (rng.bernoulli(0.5))
            s.model = strprintf("synthetic:%llu",
                                static_cast<unsigned long long>(
                                    rng.uniformInt(1, 1u << 20)));
        else
            s.model = kZoo[rng.uniformInt(0, 1)];
        s.batch = static_cast<int>(rng.uniformInt(2, 8));
        s.policy = kPolicies[rng.uniformInt(0, 4)];
        s.quota_fraction = rng.uniformReal(0.2, 0.45);
        s.priority = static_cast<int>(rng.uniformInt(1, 3));
        s.arrival = rng.uniformInt(0, 20) * kMsec;
        s.steps = 6;
        s.warmup = 3;
        specs.push_back(std::move(s));
    }
    return specs;
}

} // namespace sentinel::server
