#include "server/arbiter.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace sentinel::server {

namespace {

/** Below this many bytes a demand counts as fully served (absorbs the
 *  rounding of piecewise double drains). */
constexpr double kByteEps = 1e-6;

} // namespace

BandwidthArbiter::BandwidthArbiter(std::string name, double bytes_per_sec)
    : name_(std::move(name)), bytes_per_sec_(bytes_per_sec),
      bytes_per_ns_(bytes_per_sec / 1e9)
{
    SENTINEL_ASSERT(bytes_per_sec > 0.0,
                    "arbiter '%s' needs positive bandwidth",
                    name_.c_str());
}

void
BandwidthArbiter::recomputeActiveWeight()
{
    active_weight_ = 0.0;
    for (const auto &kv : flows_)
        if (!kv.second.queue.empty())
            active_weight_ += kv.second.queue.front().weight;
}

double
BandwidthArbiter::timeToNextCompletion() const
{
    if (active_weight_ <= 0.0)
        return -1.0;
    double best = -1.0;
    for (const auto &kv : flows_) {
        if (kv.second.queue.empty())
            continue;
        const Demand &d = kv.second.queue.front();
        double rate = bytes_per_ns_ * d.weight / active_weight_;
        double dt = d.remaining / rate;
        if (best < 0.0 || dt < best)
            best = dt;
    }
    return best;
}

void
BandwidthArbiter::drainFor(double dt)
{
    SENTINEL_ASSERT(dt >= 0.0, "arbiter drain over negative interval");
    if (dt > 0.0 && active_weight_ > 0.0) {
        for (auto &kv : flows_) {
            if (kv.second.queue.empty())
                continue;
            Demand &d = kv.second.queue.front();
            double served =
                bytes_per_ns_ * (d.weight / active_weight_) * dt;
            d.remaining = std::max(0.0, d.remaining - served);
        }
        busy_ns_ += dt;
    }
    dnow_ += dt;
}

void
BandwidthArbiter::advanceTo(Tick now)
{
    SENTINEL_ASSERT(now >= now_,
                    "arbiter '%s' advanced backwards (%lld < %lld)",
                    name_.c_str(), static_cast<long long>(now),
                    static_cast<long long>(now_));
    now_ = now;
    double target = static_cast<double>(now);
    while (dnow_ < target) {
        if (active_weight_ <= 0.0) {
            dnow_ = target;
            break;
        }
        double dt_next = timeToNextCompletion();
        double dt_avail = target - dnow_;
        bool horizon = dt_next > dt_avail;
        drainFor(horizon ? dt_avail : dt_next);
        if (horizon) {
            // Land exactly on the horizon: a dnow_ that stops one ulp
            // short makes later advanceTo(now) calls no-ops while
            // nextCompletion() keeps answering `now` — a livelock for
            // any poll loop keyed on it.
            dnow_ = target;
        }

        // Pop every head that finished at this instant.  Checked after
        // *every* drain: when dt_next exceeds dt_avail only by FP
        // noise, the partial drain still finishes the head, and
        // skipping the pop would strand an epsilon-sized demand past
        // its own completion tick.  Popping activates the flow's next
        // queued demand (full remaining, so it cannot also finish at
        // the same instant).
        Tick ctick = static_cast<Tick>(std::ceil(dnow_));
        std::vector<Completion> batch;
        for (auto &kv : flows_) {
            if (kv.second.queue.empty())
                continue;
            Demand &d = kv.second.queue.front();
            // Absolute epsilon plus a relative term: the piecewise
            // drain of a multi-GB demand rounds in its last ulps.
            if (d.remaining >
                kByteEps + 1e-9 * static_cast<double>(d.bytes))
                continue;
            batch.push_back(Completion{ d.id, kv.first, ctick });
            bytes_completed_ += d.bytes;
            kv.second.queue.pop_front();
        }
        SENTINEL_ASSERT(horizon || !batch.empty(),
                        "arbiter '%s': completion horizon reached but "
                        "no demand finished",
                        name_.c_str());
        if (!batch.empty()) {
            // Same-instant completions report in submit order.
            std::sort(batch.begin(), batch.end(),
                      [](const Completion &a, const Completion &b) {
                          return a.id < b.id;
                      });
            completed_.insert(completed_.end(), batch.begin(),
                              batch.end());
            recomputeActiveWeight();
        }
        if (horizon)
            break;
    }
}

DemandId
BandwidthArbiter::submit(std::uint32_t flow, std::uint64_t bytes,
                         Tick now, double weight)
{
    SENTINEL_ASSERT(bytes > 0, "arbiter demand must be non-empty");
    SENTINEL_ASSERT(weight > 0.0,
                    "arbiter demand weight must be positive (got %g)",
                    weight);
    advanceTo(now);
    Demand d;
    d.id = next_id_++;
    d.bytes = bytes;
    d.remaining = static_cast<double>(bytes);
    d.weight = weight;
    d.submitted = now;
    flows_[flow].queue.push_back(std::move(d));
    bytes_submitted_ += bytes;
    recomputeActiveWeight();
    return next_id_ - 1;
}

Tick
BandwidthArbiter::nextCompletion() const
{
    double dt = timeToNextCompletion();
    if (dt < 0.0)
        return -1;
    return static_cast<Tick>(std::ceil(dnow_ + dt));
}

std::vector<BandwidthArbiter::Completion>
BandwidthArbiter::takeCompleted()
{
    std::vector<Completion> out;
    out.swap(completed_);
    return out;
}

} // namespace sentinel::server
