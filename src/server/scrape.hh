/**
 * @file
 * The multi-job server's live observability plane.
 *
 * Every job admitted to the node gets a scrape registry: per-step time
 * series (co-located step time, solo exposed migration, arbiter
 * dilation, DMA grants, fast-tier residency) in telemetry::TimeSeries
 * rings sized at admission, fed by the node simulation at every
 * job-step completion — the feed itself is allocation-free, only
 * scrapes (render/snapshot) may allocate.
 *
 * On top of the per-job series sits an SLO burn-rate monitor in the
 * SRE mold: a job's SLO is "a step finishes within target_factor x its
 * solo mean step time", its error budget is the fraction of steps
 * allowed to miss, and the burn rate is (miss fraction over the last
 * `window` steps) / budget.  A burn rate of 1 spends the budget
 * exactly; when it crosses `burn_threshold` the monitor emits one
 * edge-triggered kSloBurnAlert telemetry event and one kSloBurnAlert
 * audit record (same timestamp — the standard event/audit join), and
 * re-arms once the burn drops back under the threshold.
 *
 * The plane renders as one OpenMetrics exposition (openmetrics.hh):
 * `sentinel-cli serve --listen` serves it over HTTP, `--scrape-out`
 * appends deterministic frames to a file, and `sentinel-cli top`
 * renders either source as a terminal table (renderTopFrame).
 */

#ifndef SENTINEL_SERVER_SCRAPE_HH
#define SENTINEL_SERVER_SCRAPE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "dataflow/step_stats.hh"
#include "telemetry/audit.hh"
#include "telemetry/openmetrics.hh"
#include "telemetry/session.hh"
#include "telemetry/timeseries.hh"

namespace sentinel::server {

/** Per-job service-level objective and burn-alert thresholds. */
struct SloConfig {
    /** SLO: step time <= target_factor * solo mean step time. */
    double target_factor = 1.5;

    /** Error budget: fraction of steps allowed to miss the target. */
    double error_budget = 0.10;

    /** Alert when burn rate (miss fraction / budget) reaches this. */
    double burn_threshold = 2.0;

    /** Steps in the sliding burn window. */
    std::size_t window = 16;
};

struct ScrapeConfig {
    SloConfig slo;

    /** Ring/window sizing of every per-job series. */
    telemetry::TimeSeriesOptions series;

    /** Write one snapshot frame every N job-step completions to the
     *  snapshot stream (0 = only the final frame, if a stream is
     *  attached at all). */
    int snapshot_every = 0;
};

/** One job's scrape registry + burn state. */
struct JobScrape {
    std::string name;
    std::uint64_t quota_bytes = 0;
    Tick solo_mean_step = 0; ///< phase-1 mean (all steps)
    Tick target_step = 0;    ///< SLO target derived from it

    telemetry::TimeSeries step_ns;     ///< co-located step durations
    telemetry::TimeSeries exposed_ns;  ///< solo exposed migration
    telemetry::TimeSeries throttle_ns; ///< arbiter dilation (co - solo)
    telemetry::TimeSeries granted_bytes; ///< promote+demote DMA grants
    telemetry::TimeSeries resident_bytes; ///< solo peak fast occupancy
    telemetry::TimeSeries misses;      ///< 1 when the step missed SLO

    bool admitted = false;
    bool alerting = false; ///< burn currently above threshold
    std::uint64_t steps_done = 0;
    std::uint64_t violations = 0; ///< total SLO misses
    std::uint64_t alerts = 0;     ///< edge-triggered burn alerts

    /** Miss fraction over the burn window / error budget. */
    double burnRate(const SloConfig &slo) const;

    /** 1 - (window miss fraction); the scrape's slo_attainment. */
    double attainment() const;
};

class ObservabilityPlane
{
  public:
    /**
     * @param session  optional: burn alerts are emitted into its event
     *                 ring; node counters land in its registry at
     *                 finish().
     * @param audit    optional: one kSloBurnAlert record per alert.
     * @param snapshot optional: frames are appended here.
     */
    ObservabilityPlane(ScrapeConfig cfg,
                       telemetry::Session *session = nullptr,
                       telemetry::AuditLog *audit = nullptr,
                       std::ostream *snapshot = nullptr);

    /** Size the node-level series; called once by runServer. */
    void setNode(std::uint64_t fast_bytes, double headroom);

    /** Register job @p j (pre-sizes every ring).  @p solo_mean is the
     *  phase-1 mean step time the SLO target derives from. */
    void attachJob(std::size_t j, const std::string &name,
                   std::uint64_t quota_bytes, Tick solo_mean);

    /** Node-simulation hooks (allocation-free except snapshots). */
    void onAdmit(std::size_t j, Tick now, std::uint64_t committed);
    void onStepComplete(std::size_t j, int step, Tick duration,
                        const df::StepStats &solo, Tick now,
                        std::uint64_t committed);
    /** End of the run: flush the final frame, publish node counters. */
    void finish(Tick makespan);

    /** Render one OpenMetrics exposition of the current state. */
    void render(std::ostream &os) const;
    std::string renderString() const;

    const JobScrape &job(std::size_t j) const;
    std::size_t numJobs() const { return jobs_.size(); }
    std::uint64_t alerts() const { return alerts_; }
    int snapshots() const { return snapshots_; }
    const ScrapeConfig &config() const { return cfg_; }

  private:
    void maybeSnapshot(Tick now, bool force);

    ScrapeConfig cfg_;
    telemetry::Session *session_;
    telemetry::AuditLog *audit_;
    std::ostream *snapshot_;

    std::vector<JobScrape> jobs_;
    std::uint64_t fast_bytes_ = 0;
    double headroom_ = 1.0;
    std::uint64_t committed_ = 0;
    Tick last_tick_ = 0;
    std::uint64_t node_steps_ = 0;
    std::uint64_t alerts_ = 0;
    int snapshots_ = 0;
    bool finished_ = false;
};

/**
 * Render one `sentinel-cli top` frame from parsed scrape samples:
 * one row per job (steps, p50/p99 step ms, fast residency, bandwidth
 * share, SLO attainment, burn rate, alerts) plus a node footer.
 * Works identically on a live endpoint's body and a snapshot frame.
 */
std::string renderTopFrame(const std::vector<telemetry::OmSample> &samples);

} // namespace sentinel::server

#endif // SENTINEL_SERVER_SCRAPE_HH
