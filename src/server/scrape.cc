#include "server/scrape.hh"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/logging.hh"
#include "common/table.hh"
#include "telemetry/event.hh"

namespace sentinel::server {

using telemetry::OmLabel;
using telemetry::OmSample;
using telemetry::omWriteEof;
using telemetry::omWriteSample;
using telemetry::omWriteType;

double
JobScrape::burnRate(const SloConfig &slo) const
{
    telemetry::WindowStats w = misses.window();
    if (w.count == 0 || slo.error_budget <= 0.0)
        return 0.0;
    double fraction =
        static_cast<double>(w.sum) / static_cast<double>(w.count);
    return fraction / slo.error_budget;
}

double
JobScrape::attainment() const
{
    telemetry::WindowStats w = misses.window();
    if (w.count == 0)
        return 1.0;
    return 1.0 - static_cast<double>(w.sum) / static_cast<double>(w.count);
}

namespace {

/** Series options for the SLO miss indicator: its window IS the burn
 *  window, whatever the general ring sizing says. */
telemetry::TimeSeriesOptions
missOptions(const ScrapeConfig &cfg)
{
    telemetry::TimeSeriesOptions o = cfg.series;
    o.window = std::max<std::size_t>(1, cfg.slo.window);
    o.capacity = std::max(o.capacity, o.window);
    return o;
}

} // namespace

ObservabilityPlane::ObservabilityPlane(ScrapeConfig cfg,
                                       telemetry::Session *session,
                                       telemetry::AuditLog *audit,
                                       std::ostream *snapshot)
    : cfg_(cfg), session_(session), audit_(audit), snapshot_(snapshot)
{
    SENTINEL_ASSERT(cfg_.slo.target_factor >= 1.0,
                    "SLO target factor must be >= 1");
    SENTINEL_ASSERT(cfg_.slo.window > 0, "SLO burn window must be > 0");
}

void
ObservabilityPlane::setNode(std::uint64_t fast_bytes, double headroom)
{
    fast_bytes_ = fast_bytes;
    headroom_ = headroom;
}

void
ObservabilityPlane::attachJob(std::size_t j, const std::string &name,
                              std::uint64_t quota_bytes, Tick solo_mean)
{
    if (jobs_.size() <= j)
        jobs_.resize(j + 1);
    JobScrape &js = jobs_[j];
    js.name = name;
    js.quota_bytes = quota_bytes;
    js.solo_mean_step = solo_mean;
    js.target_step = static_cast<Tick>(
        static_cast<double>(solo_mean) * cfg_.slo.target_factor);
    js.step_ns = telemetry::TimeSeries(cfg_.series);
    js.exposed_ns = telemetry::TimeSeries(cfg_.series);
    js.throttle_ns = telemetry::TimeSeries(cfg_.series);
    js.granted_bytes = telemetry::TimeSeries(cfg_.series);
    js.resident_bytes = telemetry::TimeSeries(cfg_.series);
    js.misses = telemetry::TimeSeries(missOptions(cfg_));
}

void
ObservabilityPlane::onAdmit(std::size_t j, Tick now,
                            std::uint64_t committed)
{
    SENTINEL_ASSERT(j < jobs_.size(), "admit for an unattached job");
    jobs_[j].admitted = true;
    committed_ = committed;
    last_tick_ = now;
}

void
ObservabilityPlane::onStepComplete(std::size_t j, int step, Tick duration,
                                   const df::StepStats &solo, Tick now,
                                   std::uint64_t committed)
{
    SENTINEL_ASSERT(j < jobs_.size(), "step for an unattached job");
    JobScrape &js = jobs_[j];

    js.step_ns.pushAt(static_cast<std::uint64_t>(duration), now);
    js.exposed_ns.push(
        static_cast<std::uint64_t>(solo.exposed_migration));
    js.throttle_ns.push(
        static_cast<std::uint64_t>(duration - solo.step_time));
    js.granted_bytes.pushAt(solo.promoted_bytes + solo.demoted_bytes,
                            now);
    js.resident_bytes.push(solo.peak_fast_used);

    bool miss = js.target_step > 0 && duration > js.target_step;
    js.misses.push(miss ? 1 : 0);
    if (miss)
        ++js.violations;

    ++js.steps_done;
    ++node_steps_;
    committed_ = committed;
    last_tick_ = now;

    // Burn-rate monitor: edge-triggered once the window is full, so a
    // single early miss cannot page anyone; re-arms when the burn
    // drops back under the threshold.
    if (js.misses.total() >=
        static_cast<std::uint64_t>(cfg_.slo.window)) {
        double burn = js.burnRate(cfg_.slo);
        if (!js.alerting && burn >= cfg_.slo.burn_threshold) {
            js.alerting = true;
            ++js.alerts;
            ++alerts_;
            auto milli = static_cast<std::uint64_t>(burn * 1000.0);
            if (session_)
                session_->emit(telemetry::EventType::SloBurnAlert, now,
                               0, milli,
                               static_cast<std::uint32_t>(j));
            if (audit_) {
                telemetry::AuditRecord rec;
                rec.ts = now;
                rec.bytes = milli;
                rec.tensor = telemetry::kAuditNoTensor;
                rec.step = step;
                rec.reason = telemetry::AuditReason::kSloBurnAlert;
                audit_->append(rec);
            }
        } else if (js.alerting && burn < cfg_.slo.burn_threshold) {
            js.alerting = false;
        }
    }

    maybeSnapshot(now, /*force=*/false);
}

void
ObservabilityPlane::finish(Tick makespan)
{
    if (finished_)
        return;
    finished_ = true;
    last_tick_ = makespan;
    committed_ = 0; // every admitted job has released its quota
    maybeSnapshot(makespan, /*force=*/true);
    if (session_) {
        auto &m = session_->metrics();
        m.counter("obs.slo_alerts").add(alerts_);
        m.counter("obs.scrape_frames")
            .add(static_cast<std::uint64_t>(snapshots_));
        std::uint64_t violations = 0;
        for (const JobScrape &js : jobs_)
            violations += js.violations;
        m.counter("obs.slo_violations").add(violations);
    }
}

void
ObservabilityPlane::maybeSnapshot(Tick now, bool force)
{
    if (!snapshot_)
        return;
    if (!force &&
        (cfg_.snapshot_every <= 0 ||
         node_steps_ % static_cast<std::uint64_t>(cfg_.snapshot_every) !=
             0))
        return;
    ++snapshots_;
    *snapshot_ << "# scrape k=" << snapshots_ << " tick=" << now << '\n';
    render(*snapshot_);
}

void
ObservabilityPlane::render(std::ostream &os) const
{
    // Per-job family blocks: TYPE line once, one sample per job.  The
    // exposition carries no wall-clock timestamps — it is a pure
    // function of simulated state, which is what makes snapshots
    // byte-identical across --jobs values.
    struct Fam {
        const char *name;
        const char *type;
    };
    auto forJobs = [&](const Fam &fam, auto value) {
        omWriteType(os, fam.name, fam.type);
        for (std::size_t j = 0; j < jobs_.size(); ++j) {
            std::vector<OmLabel> labels{ { "job", jobs_[j].name } };
            value(jobs_[j], labels);
        }
    };

    forJobs({ "sentinel_job_steps_total", "counter" },
            [&](const JobScrape &js, std::vector<OmLabel> &l) {
                omWriteSample(os, "sentinel_job_steps_total", l,
                              static_cast<double>(js.steps_done));
            });
    forJobs({ "sentinel_job_step_ms", "summary" },
            [&](const JobScrape &js, std::vector<OmLabel> &l) {
                const telemetry::Histogram &h = js.step_ns.sketch();
                std::vector<OmLabel> ql = l;
                ql.push_back({ "quantile", "0.5" });
                omWriteSample(os, "sentinel_job_step_ms", ql,
                              toMillis(static_cast<Tick>(
                                  h.percentile(0.50))));
                ql.back().value = "0.99";
                omWriteSample(os, "sentinel_job_step_ms", ql,
                              toMillis(static_cast<Tick>(
                                  h.percentile(0.99))));
                omWriteSample(os, "sentinel_job_step_ms_count", l,
                              static_cast<double>(h.count()));
                omWriteSample(os, "sentinel_job_step_ms_sum", l,
                              toMillis(static_cast<Tick>(h.sum())));
            });
    forJobs({ "sentinel_job_step_ms_ewma", "gauge" },
            [&](const JobScrape &js, std::vector<OmLabel> &l) {
                omWriteSample(os, "sentinel_job_step_ms_ewma", l,
                              js.step_ns.ewma() / 1e6);
            });
    forJobs({ "sentinel_job_exposed_ms_total", "counter" },
            [&](const JobScrape &js, std::vector<OmLabel> &l) {
                omWriteSample(os, "sentinel_job_exposed_ms_total", l,
                              toMillis(static_cast<Tick>(
                                  js.exposed_ns.sketch().sum())));
            });
    forJobs({ "sentinel_job_throttle_ms_total", "counter" },
            [&](const JobScrape &js, std::vector<OmLabel> &l) {
                omWriteSample(os, "sentinel_job_throttle_ms_total", l,
                              toMillis(static_cast<Tick>(
                                  js.throttle_ns.sketch().sum())));
            });
    forJobs({ "sentinel_job_dma_bytes_total", "counter" },
            [&](const JobScrape &js, std::vector<OmLabel> &l) {
                omWriteSample(os, "sentinel_job_dma_bytes_total", l,
                              static_cast<double>(
                                  js.granted_bytes.sketch().sum()));
            });
    forJobs({ "sentinel_job_dma_bytes_per_s", "gauge" },
            [&](const JobScrape &js, std::vector<OmLabel> &l) {
                omWriteSample(os, "sentinel_job_dma_bytes_per_s", l,
                              js.granted_bytes.ewmaRate());
            });
    forJobs({ "sentinel_job_fast_resident_bytes", "gauge" },
            [&](const JobScrape &js, std::vector<OmLabel> &l) {
                omWriteSample(os, "sentinel_job_fast_resident_bytes", l,
                              js.resident_bytes.window().mean);
            });
    forJobs({ "sentinel_job_quota_bytes", "gauge" },
            [&](const JobScrape &js, std::vector<OmLabel> &l) {
                omWriteSample(os, "sentinel_job_quota_bytes", l,
                              static_cast<double>(js.quota_bytes));
            });
    forJobs({ "sentinel_job_admitted", "gauge" },
            [&](const JobScrape &js, std::vector<OmLabel> &l) {
                omWriteSample(os, "sentinel_job_admitted", l,
                              js.admitted ? 1.0 : 0.0);
            });
    forJobs({ "sentinel_job_slo_target_ms", "gauge" },
            [&](const JobScrape &js, std::vector<OmLabel> &l) {
                omWriteSample(os, "sentinel_job_slo_target_ms", l,
                              toMillis(js.target_step));
            });
    forJobs({ "sentinel_job_slo_attainment", "gauge" },
            [&](const JobScrape &js, std::vector<OmLabel> &l) {
                omWriteSample(os, "sentinel_job_slo_attainment", l,
                              js.attainment());
            });
    forJobs({ "sentinel_job_slo_burn_rate", "gauge" },
            [&](const JobScrape &js, std::vector<OmLabel> &l) {
                omWriteSample(os, "sentinel_job_slo_burn_rate", l,
                              js.burnRate(cfg_.slo));
            });
    forJobs({ "sentinel_job_slo_violations_total", "counter" },
            [&](const JobScrape &js, std::vector<OmLabel> &l) {
                omWriteSample(os, "sentinel_job_slo_violations_total", l,
                              static_cast<double>(js.violations));
            });
    forJobs({ "sentinel_job_slo_alerts_total", "counter" },
            [&](const JobScrape &js, std::vector<OmLabel> &l) {
                omWriteSample(os, "sentinel_job_slo_alerts_total", l,
                              static_cast<double>(js.alerts));
            });

    // Node-level block.
    std::vector<OmLabel> none;
    omWriteType(os, "sentinel_node_fast_bytes", "gauge");
    omWriteSample(os, "sentinel_node_fast_bytes", none,
                  static_cast<double>(fast_bytes_));
    omWriteType(os, "sentinel_node_committed_bytes", "gauge");
    omWriteSample(os, "sentinel_node_committed_bytes", none,
                  static_cast<double>(committed_));
    double limit = headroom_ * static_cast<double>(fast_bytes_);
    omWriteType(os, "sentinel_node_quota_headroom_bytes", "gauge");
    omWriteSample(os, "sentinel_node_quota_headroom_bytes", none,
                  std::max(0.0,
                           limit - static_cast<double>(committed_)));
    omWriteType(os, "sentinel_node_steps_total", "counter");
    omWriteSample(os, "sentinel_node_steps_total", none,
                  static_cast<double>(node_steps_));
    omWriteType(os, "sentinel_node_slo_alerts_total", "counter");
    omWriteSample(os, "sentinel_node_slo_alerts_total", none,
                  static_cast<double>(alerts_));
    omWriteType(os, "sentinel_node_tick", "gauge");
    omWriteSample(os, "sentinel_node_tick", none,
                  static_cast<double>(last_tick_ < 0 ? 0 : last_tick_));
    omWriteEof(os);
}

std::string
ObservabilityPlane::renderString() const
{
    std::ostringstream ss;
    render(ss);
    return ss.str();
}

const JobScrape &
ObservabilityPlane::job(std::size_t j) const
{
    SENTINEL_ASSERT(j < jobs_.size(), "no such job scrape");
    return jobs_[j];
}

std::string
renderTopFrame(const std::vector<OmSample> &samples)
{
    // Regroup the flat sample list: per-job rows keyed by the "job"
    // label (insertion order preserved — the exposition lists jobs in
    // index order), node footer from the label-free samples.
    struct Row {
        std::map<std::string, double> v;
        std::map<std::string, double> q; ///< quantile -> value
    };
    std::vector<std::string> order;
    std::map<std::string, Row> jobs;
    std::map<std::string, double> node;
    for (const OmSample &s : samples) {
        const std::string &job = s.label("job");
        if (job.empty()) {
            node[s.name] = s.value;
            continue;
        }
        if (jobs.find(job) == jobs.end())
            order.push_back(job);
        Row &r = jobs[job];
        const std::string &quantile = s.label("quantile");
        if (s.name == "sentinel_job_step_ms" && !quantile.empty())
            r.q[quantile] = s.value;
        else
            r.v[s.name] = s.value;
    }

    Table t("sentinel top",
            { "job", "steps", "p50_ms", "p99_ms", "ewma_ms", "quota_mb",
              "resident_mb", "dma_mb_s", "attain", "burn", "alerts" });
    auto get = [](const std::map<std::string, double> &m,
                  const std::string &k) {
        auto it = m.find(k);
        return it == m.end() ? 0.0 : it->second;
    };
    for (const std::string &name : order) {
        const Row &r = jobs[name];
        t.row()
            .cell(name)
            .cell(static_cast<std::uint64_t>(
                get(r.v, "sentinel_job_steps_total")))
            .cell(get(r.q, "0.5"), 2)
            .cell(get(r.q, "0.99"), 2)
            .cell(get(r.v, "sentinel_job_step_ms_ewma"), 2)
            .cell(get(r.v, "sentinel_job_quota_bytes") / 1e6, 1)
            .cell(get(r.v, "sentinel_job_fast_resident_bytes") / 1e6, 1)
            .cell(get(r.v, "sentinel_job_dma_bytes_per_s") / 1e6, 1)
            .cell(get(r.v, "sentinel_job_slo_attainment"), 3)
            .cell(get(r.v, "sentinel_job_slo_burn_rate"), 2)
            .cell(static_cast<std::uint64_t>(
                get(r.v, "sentinel_job_slo_alerts_total")));
    }

    std::ostringstream os;
    t.print(os);
    os << strprintf(
        "node: %.1f MB fast, %.1f MB committed, %.1f MB headroom | "
        "steps %llu | alerts %llu | tick %.3f ms\n",
        get(node, "sentinel_node_fast_bytes") / 1e6,
        get(node, "sentinel_node_committed_bytes") / 1e6,
        get(node, "sentinel_node_quota_headroom_bytes") / 1e6,
        static_cast<unsigned long long>(
            get(node, "sentinel_node_steps_total")),
        static_cast<unsigned long long>(
            get(node, "sentinel_node_slo_alerts_total")),
        get(node, "sentinel_node_tick") / 1e6);
    return os.str();
}

} // namespace sentinel::server
