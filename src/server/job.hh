/**
 * @file
 * One tenant of the multi-job HM server: what it wants to run and how
 * much of the node it may claim.
 *
 * A JobSpec is everything the admission controller and the bandwidth
 * arbiter need to know about a training job BEFORE it runs: the model,
 * its fast-tier quota (an absolute byte count or a fraction of the
 * node's fast tier), a scheduling priority (the arbiter's weight
 * base), and the submit time on the node clock.  The executor-facing
 * knobs (policy, steps, chaos) are passed through to the per-job
 * harness run unchanged.
 *
 * Specs parse from the `--colo` grammar shared by `sentinel-cli serve`
 * and the server fuzzer:
 *
 *   model=resnet32 batch=8 quota=0.3 prio=2; model=synthetic:9 quota=0.2
 *
 * Jobs are separated by ';', fields within a job by whitespace.  Field
 * values never contain spaces (synthetic names use ':' and ','), so
 * the grammar needs no quoting.
 */

#ifndef SENTINEL_SERVER_JOB_HH
#define SENTINEL_SERVER_JOB_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hh"

namespace sentinel::server {

struct JobSpec {
    /** Display name; defaults to "<model>#<submit index>". */
    std::string name;

    std::string model = "resnet32";
    int batch = 0; ///< 0 = the model's registered small batch (or 32)
    std::string policy = "sentinel";

    /**
     * Fast-tier quota as a fraction of the NODE's fast tier (ignored
     * when quota_bytes != 0).  The quota is the job's whole fast-tier
     * world: its private memory system is built with exactly this much
     * fast memory, so mem::HeterogeneousMemory enforces the cap the
     * same way it enforces any tier capacity.
     */
    double quota_fraction = 0.25;
    std::uint64_t quota_bytes = 0;

    /**
     * Arbiter weight base (>= 1).  A job's migration demand drains at
     * bandwidth proportional to its priority among backlogged jobs;
     * steps that stalled on demand faults get a further boost
     * (ServerConfig::demand_fault_boost).
     */
    int priority = 1;

    /** Submit time on the node clock. */
    Tick arrival = 0;

    int steps = 0;   ///< 0 = ServerConfig::default_steps
    int warmup = -1; ///< -1 = ServerConfig::default_warmup

    /** Per-job fault spec (sim::FaultSpec grammar); empty = healthy. */
    std::string chaos;
    std::uint64_t chaos_seed = 0x5e97195eull;

    /**
     * Parse one job ("k=v k=v ...").  Unknown keys and malformed
     * values throw harness::ConfigError.  Recognized keys: name,
     * model, batch, policy, quota (fraction in (0,1] or "<N>mb"),
     * quota-mb, prio, arrival-ms, steps, warmup, chaos, chaos-seed.
     */
    static JobSpec parse(const std::string &text);

    /** Parse a ';'-separated job list (empty segments are skipped). */
    static std::vector<JobSpec> parseList(const std::string &text);

    /** Round-trip to the --colo grammar (one job, no ';'). */
    std::string toSpecString() const;
};

} // namespace sentinel::server

#endif // SENTINEL_SERVER_JOB_HH
