/**
 * @file
 * Fast-tier capacity admission for the multi-job HM server.
 *
 * The controller tracks one number — committed quota bytes — against
 * the node's fast-tier capacity (times an optional headroom factor).
 * A job is admitted when its whole quota fits in the uncommitted
 * remainder; it commits the quota for its entire lifetime and releases
 * it on completion.  Quotas are the unit of admission because each
 * job's private memory system is BUILT with quota-sized fast memory:
 * the projection is exact, not an estimate — a job can never touch
 * more node fast memory than it committed here.
 *
 * Queued jobs wait in strict FIFO order with head-of-line blocking: a
 * small job arriving behind a large one waits for it.  That is a
 * deliberate trade — it keeps admission decisions a pure function of
 * (submit order, completion order), so the whole server stays
 * deterministic, and it starves nobody.
 */

#ifndef SENTINEL_SERVER_ADMISSION_HH
#define SENTINEL_SERVER_ADMISSION_HH

#include <cstdint>

#include "common/units.hh"

namespace sentinel::server {

class AdmissionController
{
  public:
    /**
     * @param fast_bytes the node's fast-tier capacity.
     * @param headroom   admit while committed <= headroom * fast_bytes
     *                   (1.0 = never oversubscribe; > 1.0 models an
     *                   operator accepting quota oversubscription).
     */
    AdmissionController(std::uint64_t fast_bytes, double headroom = 1.0);

    /** True if @p quota can never be admitted (exceeds the limit even
     *  on an idle node) — reject at submit instead of queueing. */
    bool neverFits(std::uint64_t quota) const;

    /** True if @p quota fits in the uncommitted remainder right now. */
    bool canAdmit(std::uint64_t quota) const;

    /** Commit @p quota (caller must have checked canAdmit). */
    void admit(std::uint64_t quota);

    /** Release a previously admitted quota. */
    void release(std::uint64_t quota);

    std::uint64_t capacity() const { return limit_; }
    std::uint64_t committed() const { return committed_; }
    std::uint64_t available() const { return limit_ - committed_; }

    /** High-water committed bytes — the oracle's capacity check. */
    std::uint64_t peakCommitted() const { return peak_committed_; }

  private:
    std::uint64_t limit_;
    std::uint64_t committed_ = 0;
    std::uint64_t peak_committed_ = 0;
};

} // namespace sentinel::server

#endif // SENTINEL_SERVER_ADMISSION_HH
