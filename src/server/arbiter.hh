/**
 * @file
 * The global migration-bandwidth arbiter.
 *
 * One arbiter governs one DMA direction of the node (the server runs
 * two: promote and demote, mirroring mem::HeterogeneousMemory's two
 * serialized channels).  Jobs submit per-step migration demands; the
 * arbiter serves all backlogged jobs simultaneously under fluid
 * weighted fair sharing (generalized processor sharing): at every
 * instant, each backlogged job drains at
 *
 *     bandwidth * weight_j / sum(weight_i over backlogged jobs i)
 *
 * so a job alone on the link gets the full rate, equal-weight jobs
 * split it evenly, and a high-priority job's demand-fault transfer
 * pulls bandwidth away from a low-priority job's prefetches the
 * moment it arrives (weights are per-demand, so the server can boost
 * exactly the faulting steps).  Within one job, demands are FIFO —
 * a job's DMA transfers are serialized, as in the single-job
 * simulator.
 *
 * The fluid service is advanced piecewise-linearly and is exact: a
 * demand's completion depends only on the arrival history up to its
 * completion instant, never on later arrivals, which is what lets the
 * server drive the arbiter from a discrete event queue with
 * re-predicted completion polls.  All state advances through
 * deterministic double arithmetic on a single thread; completion
 * times are reported as ceil'd Ticks.
 */

#ifndef SENTINEL_SERVER_ARBITER_HH
#define SENTINEL_SERVER_ARBITER_HH

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/units.hh"

namespace sentinel::server {

/** Ticket identifying one submitted demand (unique per arbiter). */
using DemandId = std::uint64_t;

class BandwidthArbiter
{
  public:
    BandwidthArbiter(std::string name, double bytes_per_sec);

    /**
     * Enqueue @p bytes of demand for @p flow, arriving at @p now with
     * fair-share weight @p weight (> 0).  Advances the fluid service
     * to @p now first.  @p bytes must be > 0.
     *
     * @return the demand's ticket.
     */
    DemandId submit(std::uint32_t flow, std::uint64_t bytes, Tick now,
                    double weight);

    /** Advance the fluid service to @p now (monotonic; earlier calls
     *  are no-ops). */
    void advanceTo(Tick now);

    /**
     * Predicted tick of the next demand completion assuming no
     * further arrivals, or -1 when nothing is backlogged.  Exact
     * unless a later submit() changes the share — the caller guards
     * its scheduled polls with a generation counter for that.
     */
    Tick nextCompletion() const;

    /** One finished demand, reported once by takeCompleted(). */
    struct Completion {
        DemandId id;
        std::uint32_t flow;
        Tick tick; ///< completion time (ceil'd to a whole Tick)
    };

    /** Drain the list of demands completed since the last call, in
     *  completion order (ties broken by submit order). */
    std::vector<Completion> takeCompleted();

    bool idle() const { return active_weight_ == 0.0; }
    double bandwidth() const { return bytes_per_sec_; }
    const std::string &name() const { return name_; }

    /** Total payload accepted / completed (conservation check). */
    std::uint64_t bytesSubmitted() const { return bytes_submitted_; }
    std::uint64_t bytesCompleted() const { return bytes_completed_; }

    /** Busy time integral: total time with a non-empty backlog. */
    Tick busyTime() const { return static_cast<Tick>(busy_ns_); }

  private:
    struct Demand {
        DemandId id;
        std::uint64_t bytes;
        double remaining; ///< bytes left to serve
        double weight;
        Tick submitted;
    };
    struct Flow {
        std::deque<Demand> queue; ///< head is in service
    };

    /** Advance the fluid state by exactly @p dt nanoseconds (no
     *  completion may occur strictly inside the interval). */
    void drainFor(double dt);

    /** Time (ns) until the earliest head-of-line completion at the
     *  current shares, or -1 when idle. */
    double timeToNextCompletion() const;

    void recomputeActiveWeight();

    std::string name_;
    double bytes_per_sec_;
    double bytes_per_ns_;

    /** std::map: deterministic flow iteration order. */
    std::map<std::uint32_t, Flow> flows_;
    double active_weight_ = 0.0;
    double dnow_ = 0.0; ///< fluid clock (ns, fractional)
    Tick now_ = 0;      ///< last advanceTo() target

    std::vector<Completion> completed_;
    DemandId next_id_ = 1;
    std::uint64_t bytes_submitted_ = 0;
    std::uint64_t bytes_completed_ = 0;
    double busy_ns_ = 0.0;
};

} // namespace sentinel::server

#endif // SENTINEL_SERVER_ARBITER_HH
