/**
 * @file
 * The multi-job differential oracle.
 *
 * The server's central promise is that co-location changes WHEN a job's
 * work happens but never WHAT the job does: per-job migrated bytes and
 * access traffic must be bit-identical to the same job run solo at its
 * quota, and the whole server must be deterministic regardless of how
 * many phase-1 worker threads it uses.  This oracle re-verifies both
 * from the outside:
 *
 *  - server-determinism:  a serial run and a `--jobs N` run produce the
 *                         same summary() text and the same per-job
 *                         step-duration traces, byte for byte;
 *  - job-traffic:         every completed job's per-step promoted /
 *                         demoted / fast / slow bytes, stall counts,
 *                         and solo step times match an independent solo
 *                         re-run of the identical configuration exactly;
 *  - node-conservation:   the node's DMA totals equal the sum of the
 *                         per-job solo migration volumes;
 *  - capacity:            the admission high-water mark never exceeds
 *                         headroom * fast_bytes;
 *  - dilation:            no co-located step is shorter than its solo
 *                         run, and submit <= admit <= finish per job.
 *
 * Violations reuse harness::OracleReport so the fuzzer, the CLI, and
 * the tests render single-job and multi-job failures the same way.
 */

#ifndef SENTINEL_SERVER_ORACLE_HH
#define SENTINEL_SERVER_ORACLE_HH

#include <cstdint>
#include <vector>

#include "harness/oracle.hh"
#include "server/job.hh"
#include "server/server.hh"

namespace sentinel::server {

struct ServerOracleOptions {
    /** Phase-1 thread count of the comparison run (the reference run
     *  is always serial). */
    int jobs = 4;

    /** Run the serial-vs-parallel comparison (the cheap half). */
    bool check_determinism = true;

    /** Re-run every completed job solo and compare traffic exactly
     *  (doubles the per-job simulation cost). */
    bool check_solo_rerun = true;
};

/** Run @p specs through the server and check the invariants above. */
harness::OracleReport runServerOracle(const ServerConfig &cfg,
                                      const std::vector<JobSpec> &specs,
                                      const ServerOracleOptions &opts = {});

/**
 * Deterministically derive a mixed co-location: @p njobs jobs drawn
 * from light zoo models and synthetic:<seed> graphs, with randomized
 * quotas, priorities, staggered arrivals, and an occasional non-default
 * policy.  Quota fractions are drawn from [0.2, 0.45] so 2-4 jobs
 * exercise both concurrent admission and head-of-line queueing.
 */
std::vector<JobSpec> randomColocation(std::uint64_t seed, int njobs);

} // namespace sentinel::server

#endif // SENTINEL_SERVER_ORACLE_HH
