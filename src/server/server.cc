#include "server/server.hh"

#include <algorithm>
#include <deque>
#include <map>
#include <sstream>

#include "common/logging.hh"
#include "common/table.hh"
#include "common/thread_pool.hh"
#include "mem/page.hh"
#include "models/registry.hh"
#include "server/admission.hh"
#include "server/arbiter.hh"
#include "server/scrape.hh"
#include "sim/event_queue.hh"

namespace sentinel::server {

namespace {

const char *
platformName(harness::Platform p)
{
    return p == harness::Platform::Optane ? "optane" : "gpu";
}

/** Resolve the per-spec defaults runServer promises (quota, batch,
 *  steps, warmup, display name). */
void
resolveSpec(const ServerConfig &cfg, JobSpec &spec, std::size_t index,
            JobResult &out)
{
    if (spec.name.empty())
        spec.name = strprintf("%s#%zu", spec.model.c_str(), index);
    if (spec.batch == 0) {
        const models::ModelSpec *ms = models::findModelSpec(spec.model);
        spec.batch = ms ? ms->small_batch : 32;
    }
    if (spec.steps == 0)
        spec.steps = cfg.default_steps;
    if (spec.warmup < 0)
        spec.warmup = cfg.default_warmup;

    std::uint64_t quota = spec.quota_bytes;
    if (quota == 0)
        quota = static_cast<std::uint64_t>(
            spec.quota_fraction * static_cast<double>(cfg.fast_bytes));
    out.quota_bytes = mem::roundUpToPages(quota);
    out.steps = spec.steps;
    out.warmup = spec.warmup;
    out.submit = spec.arrival;
}

/** Phase 1: the job's solo run at its quota.  Returns true when the
 *  job is eligible for the node (status stays Completed-track). */
bool
runSolo(const ServerConfig &cfg, const JobSpec &spec, JobResult &out)
{
    harness::ExperimentConfig ec;
    ec.model = spec.model;
    ec.batch = spec.batch;
    ec.platform = cfg.platform;
    ec.fast_bytes = out.quota_bytes;
    ec.steps = spec.steps;
    ec.warmup = spec.warmup;
    ec.chaos = spec.chaos;
    ec.chaos_seed = spec.chaos_seed;

    harness::StepTrace trace;
    try {
        trace = harness::runExperimentSteps(ec, spec.policy);
    } catch (const harness::ConfigError &e) {
        out.status = JobStatus::Rejected;
        out.detail = strprintf("quota unusable: %s", e.what());
        return false;
    } catch (const std::runtime_error &e) {
        out.status = JobStatus::Infeasible;
        out.detail = e.what();
        return false;
    }
    out.solo = trace.metrics;
    if (!trace.metrics.supported) {
        out.status = JobStatus::Unsupported;
        out.detail = strprintf("policy '%s' cannot run '%s'",
                               spec.policy.c_str(), spec.model.c_str());
        return false;
    }
    if (!trace.metrics.feasible || trace.steps.empty()) {
        out.status = JobStatus::Infeasible;
        out.detail = strprintf("infeasible at %llu-byte quota",
                               static_cast<unsigned long long>(
                                   out.quota_bytes));
        return false;
    }
    out.solo_steps = std::move(trace.steps);
    return true;
}

/**
 * Phase 2: the shared node.  Every eligible job arrives on one
 * sim::EventQueue, queues FIFO for admission, and replays its solo
 * demand trace against the two global bandwidth arbiters.  Strictly
 * serial and fully deterministic: state advances only inside event
 * callbacks, at event time, in event-queue order.
 */
class NodeSim
{
  public:
    NodeSim(const ServerConfig &cfg, ServerResult &result,
            const std::vector<JobSpec> &specs)
        : cfg_(cfg), result_(result), specs_(specs),
          admission_(cfg.fast_bytes, cfg.headroom),
          promote_("node.promote",
                   harness::platformConfig(cfg.platform, cfg.fast_bytes)
                       .migration.promote_bw),
          demote_("node.demote",
                  harness::platformConfig(cfg.platform, cfg.fast_bytes)
                      .migration.demote_bw),
          state_(specs.size())
    {
    }

    void
    run()
    {
        // Arrivals in submit order: the event queue's FIFO tie-break
        // makes same-tick arrivals deterministic (tests/sim).
        for (std::size_t j = 0; j < specs_.size(); ++j) {
            if (result_.jobs[j].status != JobStatus::Completed)
                continue;
            eq_.schedule(specs_[j].arrival,
                         [this, j](Tick now) { onArrival(j, now); });
        }
        eq_.drain();

        SENTINEL_ASSERT(queue_.empty(),
                        "server event queue drained with %zu jobs "
                        "still waiting for admission",
                        queue_.size());
        SENTINEL_ASSERT(promote_.bytesCompleted() ==
                            promote_.bytesSubmitted(),
                        "promote arbiter leaked demand");
        SENTINEL_ASSERT(demote_.bytesCompleted() ==
                            demote_.bytesSubmitted(),
                        "demote arbiter leaked demand");

        result_.promoted_bytes = promote_.bytesCompleted();
        result_.demoted_bytes = demote_.bytesCompleted();
        result_.peak_committed = admission_.peakCommitted();
    }

  private:
    struct JobState {
        bool active = false;
        int step = 0;
        Tick step_start = 0;
        bool compute_done = false;
        bool promote_done = false;
        bool demote_done = false;
    };

    void
    onArrival(std::size_t j, Tick now)
    {
        queue_.push_back(j);
        tryAdmit(now);
    }

    /** Strict FIFO with head-of-line blocking (see admission.hh). */
    void
    tryAdmit(Tick now)
    {
        while (!queue_.empty() &&
               admission_.canAdmit(result_.jobs[queue_.front()]
                                       .quota_bytes)) {
            std::size_t j = queue_.front();
            queue_.pop_front();
            admission_.admit(result_.jobs[j].quota_bytes);
            result_.jobs[j].admit = now;
            state_[j].active = true;
            state_[j].step = 0;
            if (cfg_.obs)
                cfg_.obs->onAdmit(j, now, admission_.committed());
            startStep(j, now);
        }
    }

    void
    startStep(std::size_t j, Tick now)
    {
        JobState &st = state_[j];
        const df::StepStats &s =
            result_.jobs[j].solo_steps[static_cast<std::size_t>(st.step)];
        st.step_start = now;
        st.compute_done = false;

        // Demand-fault steps pull extra share: a stalled step's
        // transfers are on the critical path, a clean step's are
        // prefetches that can afford to wait.
        double weight = static_cast<double>(specs_[j].priority);
        if (s.num_stalls > 0)
            weight *= cfg_.demand_fault_boost;

        st.promote_done = s.promoted_bytes == 0;
        if (!st.promote_done)
            promote_owner_[promote_.submit(static_cast<std::uint32_t>(j),
                                           s.promoted_bytes, now,
                                           weight)] = j;
        st.demote_done = s.demoted_bytes == 0;
        if (!st.demote_done)
            demote_owner_[demote_.submit(static_cast<std::uint32_t>(j),
                                         s.demoted_bytes, now, weight)] =
                j;

        int step = st.step;
        eq_.schedule(now + s.step_time, [this, j, step](Tick when) {
            // One compute event per (job, step); never stale.
            SENTINEL_ASSERT(state_[j].step == step,
                            "compute completion for a finished step");
            state_[j].compute_done = true;
            maybeFinishStep(j, when);
        });
        schedulePoll(now);
    }

    void
    maybeFinishStep(std::size_t j, Tick now)
    {
        JobState &st = state_[j];
        if (!st.active || !st.compute_done || !st.promote_done ||
            !st.demote_done)
            return;
        JobResult &r = result_.jobs[j];
        Tick duration = now - st.step_start;
        int finished = st.step;
        const df::StepStats &solo =
            r.solo_steps[static_cast<std::size_t>(finished)];
        SENTINEL_ASSERT(duration >= solo.step_time,
                        "co-located step shorter than its solo run");
        r.step_durations.push_back(duration);
        ++st.step;
        if (st.step == r.steps) {
            st.active = false;
            r.finish = now;
            admission_.release(r.quota_bytes);
            tryAdmit(now);
        } else {
            startStep(j, now);
        }
        // Feed the plane after admission settled so the committed
        // figure it records at `now` is the post-release/post-admit
        // one; the finished step's identity was captured above.
        if (cfg_.obs)
            cfg_.obs->onStepComplete(j, finished, duration, solo, now,
                                     admission_.committed());
    }

    /**
     * (Re)arm the completion poll.  Predictions are exact while the
     * backlog is unchanged; every submit and every handled poll bumps
     * the generation, so at most one poll is live and stale ones
     * no-op.  An early-firing poll (shares shrank after an arrival)
     * is harmless: it advances, completes nothing, re-arms.
     */
    void
    schedulePoll(Tick now)
    {
        Tick tp = promote_.nextCompletion();
        Tick td = demote_.nextCompletion();
        Tick t = tp;
        if (td >= 0 && (t < 0 || td < t))
            t = td;
        if (t < 0)
            return;
        // Strictly in the future: the arbiters' fluid clocks already
        // sit at `now`, so a poll at `now` could advance nothing,
        // complete nothing, and re-arm itself forever.  Completion
        // ticks are ceil'd predictions, so firing 1 ns late is
        // harmless and keeps the loop deterministic.
        t = std::max(t, now + 1);
        std::uint64_t gen = ++poll_gen_;
        eq_.schedule(t,
                     [this, gen](Tick when) { onPoll(when, gen); });
    }

    void
    onPoll(Tick now, std::uint64_t gen)
    {
        if (gen != poll_gen_)
            return;
        promote_.advanceTo(now);
        demote_.advanceTo(now);
        std::vector<std::size_t> touched;
        for (const auto &c : promote_.takeCompleted()) {
            auto it = promote_owner_.find(c.id);
            SENTINEL_ASSERT(it != promote_owner_.end(),
                            "unowned promote completion");
            state_[it->second].promote_done = true;
            touched.push_back(it->second);
            promote_owner_.erase(it);
        }
        for (const auto &c : demote_.takeCompleted()) {
            auto it = demote_owner_.find(c.id);
            SENTINEL_ASSERT(it != demote_owner_.end(),
                            "unowned demote completion");
            state_[it->second].demote_done = true;
            touched.push_back(it->second);
            demote_owner_.erase(it);
        }
        for (std::size_t j : touched)
            maybeFinishStep(j, now);
        schedulePoll(now);
    }

    const ServerConfig &cfg_;
    ServerResult &result_;
    const std::vector<JobSpec> &specs_;

    sim::EventQueue eq_;
    AdmissionController admission_;
    BandwidthArbiter promote_;
    BandwidthArbiter demote_;

    std::deque<std::size_t> queue_; ///< submitted, awaiting admission
    std::vector<JobState> state_;
    std::map<DemandId, std::size_t> promote_owner_;
    std::map<DemandId, std::size_t> demote_owner_;
    std::uint64_t poll_gen_ = 0;
};

/** Fill in JobResult::slo from the phase-2 durations. */
void
computeSlo(JobResult &r)
{
    std::size_t lo = static_cast<std::size_t>(r.warmup);
    std::vector<double> measured_ms;
    Tick co_sum = 0, solo_sum = 0, exposed_sum = 0, dilation_sum = 0;
    for (std::size_t k = lo; k < r.step_durations.size(); ++k) {
        Tick d = r.step_durations[k];
        const df::StepStats &s = r.solo_steps[k];
        measured_ms.push_back(toMillis(d));
        co_sum += d;
        solo_sum += s.step_time;
        exposed_sum += s.exposed_migration;
        dilation_sum += d - s.step_time;
    }
    r.slo.step_ms = PercentileSummary::of(measured_ms);
    if (!measured_ms.empty())
        r.slo.mean_ms = toMillis(co_sum) /
                        static_cast<double>(measured_ms.size());
    if (co_sum > 0)
        r.slo.stall_share =
            toMillis(exposed_sum + dilation_sum) / toMillis(co_sum);
    if (solo_sum > 0)
        r.slo.slowdown = static_cast<double>(co_sum) /
                         static_cast<double>(solo_sum);
    r.slo.queue_wait_ms = toMillis(r.admit - r.submit);
    Tick throttle = 0;
    for (std::size_t k = 0; k < r.step_durations.size(); ++k)
        throttle += r.step_durations[k] - r.solo_steps[k].step_time;
    r.slo.throttle_ms = toMillis(throttle);
}

} // namespace

const char *
jobStatusName(JobStatus s)
{
    switch (s) {
    case JobStatus::Rejected:
        return "rejected";
    case JobStatus::Unsupported:
        return "unsupported";
    case JobStatus::Infeasible:
        return "infeasible";
    case JobStatus::Completed:
        return "completed";
    }
    return "?";
}

ServerResult
runServer(const ServerConfig &cfg, const std::vector<JobSpec> &specs)
{
    if (cfg.fast_bytes < mem::kPageSize)
        throw harness::ConfigError(
            "server needs a fast tier of at least one page");
    if (specs.empty())
        throw harness::ConfigError("server needs at least one job");
    if (cfg.headroom < 1.0)
        throw harness::ConfigError(
            "admission headroom must be >= 1.0");
    if (cfg.demand_fault_boost < 1.0)
        throw harness::ConfigError(
            "demand-fault boost must be >= 1.0");
    if (cfg.default_steps <= 0 || cfg.default_warmup < 0 ||
        cfg.default_warmup >= cfg.default_steps)
        throw harness::ConfigError(
            "server default steps/warmup are inconsistent");
    for (const JobSpec &s : specs)
        if (s.arrival < 0)
            throw harness::ConfigError("job arrival must be >= 0");

    ServerResult result;
    result.platform = cfg.platform;
    result.fast_bytes = cfg.fast_bytes;
    result.jobs.resize(specs.size());

    std::vector<JobSpec> resolved = specs;
    AdmissionController gate(cfg.fast_bytes, cfg.headroom);
    for (std::size_t i = 0; i < resolved.size(); ++i) {
        resolveSpec(cfg, resolved[i], i, result.jobs[i]);
        result.jobs[i].spec = resolved[i];
        if (gate.neverFits(result.jobs[i].quota_bytes)) {
            result.jobs[i].status = JobStatus::Rejected;
            result.jobs[i].detail = strprintf(
                "quota %llu exceeds node capacity %llu",
                static_cast<unsigned long long>(
                    result.jobs[i].quota_bytes),
                static_cast<unsigned long long>(gate.capacity()));
        }
    }

    // Phase 1: solo runs at quota, one independent simulation per job
    // (private graph, memory system, clock) — safe to fan out, and
    // byte-identical to serial for any jobs value.
    parallelFor(resolved.size(), cfg.jobs, [&](std::size_t i) {
        JobResult &r = result.jobs[i];
        if (r.status == JobStatus::Rejected && !r.detail.empty())
            return; // rejected at submit; never runs
        r.status = runSolo(cfg, resolved[i], r) ? JobStatus::Completed
                                                : r.status;
    });

    if (cfg.obs) {
        cfg.obs->setNode(cfg.fast_bytes, cfg.headroom);
        for (std::size_t i = 0; i < result.jobs.size(); ++i) {
            const JobResult &r = result.jobs[i];
            Tick mean = 0;
            if (!r.solo_steps.empty()) {
                Tick sum = 0;
                for (const df::StepStats &s : r.solo_steps)
                    sum += s.step_time;
                mean = sum / static_cast<Tick>(r.solo_steps.size());
            }
            cfg.obs->attachJob(i, resolved[i].name, r.quota_bytes,
                               mean);
        }
    }

    // Phase 2: the shared node (always serial).
    NodeSim node(cfg, result, resolved);
    node.run();

    Tick makespan = 0;
    double samples = 0.0;
    for (JobResult &r : result.jobs) {
        if (r.status != JobStatus::Completed) {
            ++result.rejected;
            continue;
        }
        SENTINEL_ASSERT(r.step_durations.size() ==
                            r.solo_steps.size(),
                        "job '%s' finished with a partial trace",
                        r.spec.name.c_str());
        ++result.admitted;
        computeSlo(r);
        makespan = std::max(makespan, r.finish);
        samples += static_cast<double>(r.spec.batch) * r.steps;
    }
    result.makespan = makespan;
    if (makespan > 0)
        result.aggregate_throughput = samples / toSeconds(makespan);

    if (cfg.obs)
        cfg.obs->finish(makespan);

    if (cfg.telemetry) {
        auto &m = cfg.telemetry->metrics();
        m.counter("server.jobs_admitted")
            .add(static_cast<std::uint64_t>(result.admitted));
        m.counter("server.jobs_rejected")
            .add(static_cast<std::uint64_t>(result.rejected));
        m.counter("server.promoted_bytes").add(result.promoted_bytes);
        m.counter("server.demoted_bytes").add(result.demoted_bytes);
        m.counter("server.peak_committed_bytes")
            .add(result.peak_committed);
    }
    return result;
}

std::string
ServerResult::summary() const
{
    std::ostringstream os;
    Table t(strprintf("server: %zu job(s) on %s node, %.1f MB fast tier",
                      jobs.size(), platformName(platform),
                      static_cast<double>(fast_bytes) / 1e6),
            { "job", "model", "batch", "policy", "quota_mb", "prio",
              "status", "queue_ms", "p50_ms", "p99_ms", "stall_pct",
              "throttle_ms", "slowdown" });
    for (const JobResult &r : jobs) {
        t.row()
            .cell(r.spec.name)
            .cell(r.spec.model)
            .cell(r.spec.batch)
            .cell(r.spec.policy)
            .cell(static_cast<double>(r.quota_bytes) / 1e6, 1)
            .cell(r.spec.priority)
            .cell(jobStatusName(r.status));
        if (r.status == JobStatus::Completed)
            t.cell(r.slo.queue_wait_ms, 2)
                .cell(r.slo.step_ms.p50, 2)
                .cell(r.slo.step_ms.p99, 2)
                .cell(100.0 * r.slo.stall_share, 1)
                .cell(r.slo.throttle_ms, 2)
                .cell(r.slo.slowdown, 3);
        else
            t.cell("-").cell("-").cell("-").cell("-").cell("-").cell(
                "-");
    }
    t.print(os);
    os << strprintf("admitted %d  rejected %d  makespan %.2f ms  "
                    "aggregate %.1f samples/s\n",
                    admitted, rejected, toMillis(makespan),
                    aggregate_throughput);
    os << strprintf("node DMA: promoted %.1f MB, demoted %.1f MB; "
                    "peak committed %.1f / %.1f MB\n",
                    static_cast<double>(promoted_bytes) / 1e6,
                    static_cast<double>(demoted_bytes) / 1e6,
                    static_cast<double>(peak_committed) / 1e6,
                    static_cast<double>(fast_bytes) / 1e6);
    return os.str();
}

} // namespace sentinel::server
