#include "server/admission.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sentinel::server {

AdmissionController::AdmissionController(std::uint64_t fast_bytes,
                                         double headroom)
{
    SENTINEL_ASSERT(fast_bytes > 0,
                    "admission controller needs a non-empty fast tier");
    SENTINEL_ASSERT(headroom >= 1.0,
                    "admission headroom must be >= 1.0 (got %g)",
                    headroom);
    limit_ = static_cast<std::uint64_t>(
        static_cast<double>(fast_bytes) * headroom);
    limit_ = std::max(limit_, fast_bytes);
}

bool
AdmissionController::neverFits(std::uint64_t quota) const
{
    return quota > limit_;
}

bool
AdmissionController::canAdmit(std::uint64_t quota) const
{
    return quota <= limit_ - committed_;
}

void
AdmissionController::admit(std::uint64_t quota)
{
    SENTINEL_ASSERT(canAdmit(quota),
                    "admitting %llu bytes over the %llu-byte limit "
                    "(%llu committed)",
                    static_cast<unsigned long long>(quota),
                    static_cast<unsigned long long>(limit_),
                    static_cast<unsigned long long>(committed_));
    committed_ += quota;
    peak_committed_ = std::max(peak_committed_, committed_);
}

void
AdmissionController::release(std::uint64_t quota)
{
    SENTINEL_ASSERT(quota <= committed_,
                    "releasing %llu bytes with only %llu committed",
                    static_cast<unsigned long long>(quota),
                    static_cast<unsigned long long>(committed_));
    committed_ -= quota;
}

} // namespace sentinel::server
