#include "server/http.hh"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.hh"

namespace sentinel::server {

namespace {

constexpr const char *kContentType =
    "application/openmetrics-text; version=1.0.0; charset=utf-8";

/** Read until the header terminator (or the peer closes / 8 KB). */
std::string
readRequestHead(int fd)
{
    std::string head;
    char buf[1024];
    while (head.find("\r\n\r\n") == std::string::npos &&
           head.size() < 8192) {
        ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n <= 0)
            break;
        head.append(buf, static_cast<std::size_t>(n));
    }
    return head;
}

void
writeAll(int fd, const std::string &data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                           MSG_NOSIGNAL);
        if (n <= 0)
            return;
        off += static_cast<std::size_t>(n);
    }
}

std::string
response(int status, const char *reason, const std::string &body,
         const char *content_type)
{
    return strprintf("HTTP/1.1 %d %s\r\n"
                     "Content-Type: %s\r\n"
                     "Content-Length: %zu\r\n"
                     "Connection: close\r\n"
                     "\r\n",
                     status, reason, content_type, body.size()) +
           body;
}

} // namespace

MetricsHttpServer::~MetricsHttpServer() { shutdown(); }

bool
MetricsHttpServer::listen(int port)
{
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
        error_ = strprintf("socket: %s", std::strerror(errno));
        return false;
    }
    int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::bind(fd_, reinterpret_cast<sockaddr *>(&addr), sizeof addr) <
        0) {
        error_ = strprintf("bind 127.0.0.1:%d: %s", port,
                           std::strerror(errno));
        shutdown();
        return false;
    }
    if (::listen(fd_, 8) < 0) {
        error_ = strprintf("listen: %s", std::strerror(errno));
        shutdown();
        return false;
    }
    socklen_t len = sizeof addr;
    if (::getsockname(fd_, reinterpret_cast<sockaddr *>(&addr), &len) <
        0) {
        error_ = strprintf("getsockname: %s", std::strerror(errno));
        shutdown();
        return false;
    }
    port_ = ntohs(addr.sin_port);
    return true;
}

int
MetricsHttpServer::serve(const MetricsBodyFn &body, int max_requests)
{
    int served = 0;
    while (fd_ >= 0 && (max_requests == 0 || served < max_requests)) {
        int client = ::accept(fd_, nullptr, nullptr);
        if (client < 0) {
            if (errno == EINTR)
                continue;
            break; // shutdown() closed the socket, or a real error
        }
        std::string head = readRequestHead(client);
        std::size_t eol = head.find("\r\n");
        std::string request_line =
            eol == std::string::npos ? head : head.substr(0, eol);

        std::string method, path;
        std::size_t sp = request_line.find(' ');
        if (sp != std::string::npos) {
            method = request_line.substr(0, sp);
            std::size_t sp2 = request_line.find(' ', sp + 1);
            path = request_line.substr(sp + 1, sp2 == std::string::npos
                                                   ? std::string::npos
                                                   : sp2 - sp - 1);
        }

        if (method != "GET") {
            writeAll(client,
                     response(405, "Method Not Allowed",
                              "only GET is supported\n", "text/plain"));
        } else if (path == "/metrics" || path == "/") {
            writeAll(client, response(200, "OK", body(), kContentType));
        } else {
            writeAll(client, response(404, "Not Found",
                                      "try /metrics\n", "text/plain"));
        }
        ::close(client);
        ++served;
    }
    return served;
}

void
MetricsHttpServer::shutdown()
{
    if (fd_ >= 0) {
        // shutdown() before close() kicks an accept() blocked in
        // another thread out immediately.
        ::shutdown(fd_, SHUT_RDWR);
        ::close(fd_);
        fd_ = -1;
    }
}

bool
httpGet(const std::string &host, int port, const std::string &path,
        std::string &body, std::string *err)
{
    auto fail = [&](const std::string &what) {
        if (err)
            *err = what;
        return false;
    };

    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *res = nullptr;
    std::string service = strprintf("%d", port);
    int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &res);
    if (rc != 0)
        return fail(strprintf("resolve %s: %s", host.c_str(),
                              gai_strerror(rc)));

    int fd = -1;
    for (addrinfo *ai = res; ai; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0)
            continue;
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0)
            break;
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(res);
    if (fd < 0)
        return fail(strprintf("connect %s:%d: %s", host.c_str(), port,
                              std::strerror(errno)));

    std::string request =
        strprintf("GET %s HTTP/1.1\r\nHost: %s\r\n"
                  "Connection: close\r\n\r\n",
                  path.c_str(), host.c_str());
    writeAll(fd, request);

    std::string raw;
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0)
        raw.append(buf, static_cast<std::size_t>(n));
    ::close(fd);

    std::size_t split = raw.find("\r\n\r\n");
    if (split == std::string::npos)
        return fail("malformed HTTP response (no header terminator)");
    std::string status_line = raw.substr(0, raw.find("\r\n"));
    if (status_line.find(" 200 ") == std::string::npos)
        return fail(strprintf("HTTP status: %s", status_line.c_str()));
    body = raw.substr(split + 4);
    return true;
}

} // namespace sentinel::server
