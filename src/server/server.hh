/**
 * @file
 * The multi-job heterogeneous-memory server.
 *
 * One simulated HM node serving a queue of training jobs.  The run is
 * two-phase:
 *
 *  Phase 1 (parallelizable, per-job): every job that could ever be
 *  admitted runs SOLO through the ordinary harness with its fast tier
 *  sized to exactly its quota — mem::HeterogeneousMemory enforces the
 *  quota as a hard tier capacity, and the job's policy, migrations,
 *  and traffic are decided exactly as they would be in a solo run.
 *  This phase produces the job's per-step demand trace (compute
 *  envelope + promote/demote bytes).
 *
 *  Phase 2 (serial, shared node clock): jobs arrive on one
 *  sim::EventQueue, pass the FIFO admission controller, and replay
 *  their demand traces step-locked against two global
 *  BandwidthArbiters (promote / demote — the node's DMA channels).
 *  A step that would finish in `solo_step_time` alone finishes at
 *
 *      max(start + solo_step_time, completion of its migration
 *                                  demands under the granted share)
 *
 *  so co-location changes WHEN things happen (queue waits, bandwidth
 *  throttling) but never WHAT the job does — per-job traffic is
 *  bit-identical to the solo run by construction, the invariant the
 *  multi-job oracle (server/oracle.hh) then re-verifies end to end.
 *
 * SLO metrics per job (p50/p95/p99 step time, stall share, queue wait,
 * quota-throttle time, slowdown vs solo) come out of the shared
 * common/percentile.hh helper; node counters flow into an optional
 * telemetry session.
 */

#ifndef SENTINEL_SERVER_SERVER_HH
#define SENTINEL_SERVER_SERVER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/percentile.hh"
#include "harness/experiment.hh"
#include "server/job.hh"
#include "telemetry/session.hh"

namespace sentinel::server {

class ObservabilityPlane;

struct ServerConfig {
    harness::Platform platform = harness::Platform::Optane;

    /** Node fast-tier capacity (required; quotas are carved from it). */
    std::uint64_t fast_bytes = 0;

    /** Admission limit factor (>= 1; 1.0 = never oversubscribe). */
    double headroom = 1.0;

    /** Arbiter weight multiplier for steps that stalled on demand
     *  faults in their solo run (>= 1; 1.0 disables the boost). */
    double demand_fault_boost = 2.0;

    /** Phase-1 worker threads (phase 2 is always serial; results are
     *  identical for any value). */
    int jobs = 1;

    /** Defaults for JobSpecs that leave steps/warmup unset. */
    int default_steps = 12;
    int default_warmup = 4;

    /** Optional node-level telemetry session (counters + per-step
     *  events on one track per job). */
    telemetry::Session *telemetry = nullptr;

    /** Optional live observability plane (server/scrape.hh): per-job
     *  scrape registries fed at every node step, SLO burn alerts,
     *  OpenMetrics rendering.  Caller-owned; fed only during phase 2,
     *  so its contents are identical for any `jobs` value. */
    ObservabilityPlane *obs = nullptr;
};

enum class JobStatus {
    Rejected,    ///< quota can never fit the node
    Unsupported, ///< solo run rejected or unsupported by the policy
    Infeasible,  ///< solo run died OOM at its quota
    Completed,   ///< ran all steps on the node
};

const char *jobStatusName(JobStatus s);

/** Per-job service-level metrics (co-located run vs solo baseline). */
struct SloMetrics {
    /** Measured (post-warmup) co-located step times. */
    PercentileSummary step_ms;
    double mean_ms = 0.0;

    /** (solo exposed + co-location dilation) / co-located step time,
     *  over measured steps. */
    double stall_share = 0.0;

    /** Submit -> admission (capacity quota queueing). */
    double queue_wait_ms = 0.0;

    /** Total arbiter-induced dilation across ALL steps — time the job
     *  lost to sharing the node's migration bandwidth. */
    double throttle_ms = 0.0;

    /** Mean measured co-located step / mean solo step. */
    double slowdown = 1.0;
};

struct JobResult {
    JobSpec spec;
    JobStatus status = JobStatus::Rejected;
    std::string detail; ///< reject/unsupported reason, else empty

    std::uint64_t quota_bytes = 0; ///< resolved quota
    int steps = 0;                 ///< resolved step count
    int warmup = 0;

    Tick submit = 0;
    Tick admit = -1;  ///< -1 = never admitted
    Tick finish = -1; ///< -1 = never finished

    /** Solo metrics at the job's quota (phase 1). */
    harness::Metrics solo;
    /** Solo per-step stats — the demand trace and the oracle's
     *  reference for per-job traffic invariance. */
    std::vector<df::StepStats> solo_steps;

    /** Co-located per-step durations (phase 2), one per solo step. */
    std::vector<Tick> step_durations;

    SloMetrics slo;
};

struct ServerResult {
    harness::Platform platform = harness::Platform::Optane;
    std::uint64_t fast_bytes = 0;

    /** One entry per submitted job, in submit order. */
    std::vector<JobResult> jobs;

    int admitted = 0;
    int rejected = 0;

    Tick makespan = 0; ///< last finish tick (arrivals start at >= 0)
    double aggregate_throughput = 0.0; ///< samples/s over the makespan

    /** Node DMA totals (what actually crossed the shared channels). */
    std::uint64_t promoted_bytes = 0;
    std::uint64_t demoted_bytes = 0;

    /** High-water committed quota bytes (<= headroom * fast_bytes). */
    std::uint64_t peak_committed = 0;

    /** Canonical human-readable rendering.  Byte-identical across
     *  runs and for any ServerConfig::jobs value — the CLI prints it
     *  and the oracle's determinism check compares it. */
    std::string summary() const;
};

/**
 * Run @p specs on one node.  Throws harness::ConfigError when the
 * server configuration itself is invalid (no jobs, empty fast tier);
 * per-job problems (impossible quota, unsupported model) land in that
 * job's status instead.
 */
ServerResult runServer(const ServerConfig &cfg,
                       const std::vector<JobSpec> &specs);

} // namespace sentinel::server

#endif // SENTINEL_SERVER_SERVER_HH
