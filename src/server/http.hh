/**
 * @file
 * The smallest HTTP surface that makes the observability plane
 * scrapeable: a blocking loopback GET responder (the `--listen` side
 * of `sentinel-cli serve`) and a one-shot GET client (the `--endpoint`
 * side of `sentinel-cli top`, and the loopback tests).
 *
 * This is deliberately not a web server: one connection at a time,
 * GET only, request line + headers parsed just enough to route the
 * path, connection closed after every response.  A Prometheus scraper
 * or `curl` is perfectly happy with that, and it keeps the whole thing
 * dependency-free POSIX sockets.
 */

#ifndef SENTINEL_SERVER_HTTP_HH
#define SENTINEL_SERVER_HTTP_HH

#include <functional>
#include <string>

namespace sentinel::server {

/** Produces the /metrics body for one request. */
using MetricsBodyFn = std::function<std::string()>;

class MetricsHttpServer
{
  public:
    MetricsHttpServer() = default;
    ~MetricsHttpServer();

    MetricsHttpServer(const MetricsHttpServer &) = delete;
    MetricsHttpServer &operator=(const MetricsHttpServer &) = delete;

    /** Bind and listen on 127.0.0.1:@p port (0 = ephemeral).  Returns
     *  false (with errno-derived detail in error()) on failure. */
    bool listen(int port);

    /** The bound port (valid after listen). */
    int port() const { return port_; }

    /**
     * Serve @p max_requests GET requests (0 = forever), producing the
     * body via @p body per request.  `GET /metrics` (and `GET /`)
     * answer 200 with the OpenMetrics content type; other paths 404;
     * other methods 405.  Returns the number of requests served;
     * returns early if shutdown() closes the listening socket.
     */
    int serve(const MetricsBodyFn &body, int max_requests = 0);

    /** Close the listening socket; a blocked serve() returns. */
    void shutdown();

    const std::string &error() const { return error_; }

  private:
    int fd_ = -1;
    int port_ = 0;
    std::string error_;
};

/**
 * One-shot HTTP GET.  Connects to @p host:@p port, requests @p path,
 * and leaves the response body in @p body.  Returns false (with detail
 * in @p err when given) on connect/IO failure or a non-200 status.
 */
bool httpGet(const std::string &host, int port, const std::string &path,
             std::string &body, std::string *err = nullptr);

} // namespace sentinel::server

#endif // SENTINEL_SERVER_HTTP_HH
