#include "server/job.hh"

#include <cstdlib>

#include "common/logging.hh"
#include "harness/experiment.hh"

namespace sentinel::server {

namespace {

/** Split on whitespace (any run of spaces/tabs). */
std::vector<std::string>
tokens(const std::string &text)
{
    std::vector<std::string> out;
    std::size_t i = 0;
    while (i < text.size()) {
        while (i < text.size() && (text[i] == ' ' || text[i] == '\t'))
            ++i;
        std::size_t j = i;
        while (j < text.size() && text[j] != ' ' && text[j] != '\t')
            ++j;
        if (j > i)
            out.push_back(text.substr(i, j - i));
        i = j;
    }
    return out;
}

int
parseInt(const std::string &key, const std::string &v)
{
    char *end = nullptr;
    long x = std::strtol(v.c_str(), &end, 10);
    if (end == v.c_str() || *end != '\0')
        throw harness::ConfigError(strprintf(
            "job spec: %s wants an integer, got '%s'", key.c_str(),
            v.c_str()));
    return static_cast<int>(x);
}

double
parseDouble(const std::string &key, const std::string &v)
{
    char *end = nullptr;
    double x = std::strtod(v.c_str(), &end);
    if (end == v.c_str() || *end != '\0')
        throw harness::ConfigError(strprintf(
            "job spec: %s wants a number, got '%s'", key.c_str(),
            v.c_str()));
    return x;
}

} // namespace

JobSpec
JobSpec::parse(const std::string &text)
{
    JobSpec spec;
    for (const std::string &tok : tokens(text)) {
        std::size_t eq = tok.find('=');
        if (eq == std::string::npos || eq == 0)
            throw harness::ConfigError(strprintf(
                "job spec: expected k=v fields, got '%s'", tok.c_str()));
        std::string key = tok.substr(0, eq);
        std::string val = tok.substr(eq + 1);
        if (key == "name") {
            spec.name = val;
        } else if (key == "model") {
            spec.model = val;
        } else if (key == "batch") {
            spec.batch = parseInt(key, val);
        } else if (key == "policy") {
            spec.policy = val;
        } else if (key == "quota") {
            // A fraction of the node tier, or "<N>mb" for bytes.
            if (val.size() > 2 &&
                (val.compare(val.size() - 2, 2, "mb") == 0 ||
                 val.compare(val.size() - 2, 2, "MB") == 0)) {
                spec.quota_bytes =
                    static_cast<std::uint64_t>(parseInt(
                        key, val.substr(0, val.size() - 2)))
                    << 20;
            } else {
                spec.quota_fraction = parseDouble(key, val);
            }
        } else if (key == "quota-mb") {
            spec.quota_bytes =
                static_cast<std::uint64_t>(parseInt(key, val)) << 20;
        } else if (key == "prio") {
            spec.priority = parseInt(key, val);
        } else if (key == "arrival-ms") {
            spec.arrival = static_cast<Tick>(parseDouble(key, val) *
                                             static_cast<double>(kMsec));
        } else if (key == "steps") {
            spec.steps = parseInt(key, val);
        } else if (key == "warmup") {
            spec.warmup = parseInt(key, val);
        } else if (key == "chaos") {
            spec.chaos = val;
        } else if (key == "chaos-seed") {
            spec.chaos_seed = std::strtoull(val.c_str(), nullptr, 0);
        } else {
            throw harness::ConfigError(strprintf(
                "job spec: unknown key '%s' (in '%s')", key.c_str(),
                tok.c_str()));
        }
    }
    if (spec.priority < 1)
        throw harness::ConfigError(strprintf(
            "job spec: prio must be >= 1 (got %d)", spec.priority));
    if (spec.arrival < 0)
        throw harness::ConfigError("job spec: arrival-ms must be >= 0");
    if (spec.quota_bytes == 0 &&
        (spec.quota_fraction <= 0.0 || spec.quota_fraction > 1.0))
        throw harness::ConfigError(strprintf(
            "job spec: quota fraction must lie in (0, 1] (got %g)",
            spec.quota_fraction));
    return spec;
}

std::vector<JobSpec>
JobSpec::parseList(const std::string &text)
{
    std::vector<JobSpec> out;
    std::size_t start = 0;
    while (start <= text.size()) {
        std::size_t semi = text.find(';', start);
        std::string part =
            text.substr(start, semi == std::string::npos
                                   ? std::string::npos
                                   : semi - start);
        if (!tokens(part).empty())
            out.push_back(parse(part));
        if (semi == std::string::npos)
            break;
        start = semi + 1;
    }
    return out;
}

std::string
JobSpec::toSpecString() const
{
    std::string s = "model=" + model;
    if (!name.empty())
        s += " name=" + name;
    if (batch != 0)
        s += strprintf(" batch=%d", batch);
    if (policy != "sentinel")
        s += " policy=" + policy;
    if (quota_bytes != 0)
        s += strprintf(" quota-mb=%llu",
                       static_cast<unsigned long long>(quota_bytes >> 20));
    else
        s += strprintf(" quota=%.17g", quota_fraction);
    if (priority != 1)
        s += strprintf(" prio=%d", priority);
    if (arrival != 0)
        s += strprintf(" arrival-ms=%.17g",
                       toMillis(arrival));
    if (steps != 0)
        s += strprintf(" steps=%d", steps);
    if (warmup >= 0)
        s += strprintf(" warmup=%d", warmup);
    if (!chaos.empty())
        s += " chaos=" + chaos;
    if (chaos_seed != 0x5e97195eull)
        s += strprintf(" chaos-seed=0x%llx",
                       static_cast<unsigned long long>(chaos_seed));
    return s;
}

} // namespace sentinel::server
