/**
 * @file
 * Offline memory planning: interval-graph offset assignment.
 *
 * Given tensors with [first, last] use intervals, assign each a byte
 * offset in one shared address range so that no two tensors whose
 * lifetimes overlap share bytes, minimizing the high-water footprint.
 * Tensors with disjoint lifetimes may (and should) reuse the same
 * bytes — exactly the slack Sentinel's greedy per-class co-allocation
 * leaves on the table when lifetimes interleave ("Memory Planning for
 * Deep Neural Networks"; hannk's FindAllocatableTensors).
 *
 * Two solvers:
 *
 *  - Greedy   : place tensors largest-first, each into the best-fit
 *               hole among the regions occupied by lifetime-overlapping
 *               neighbours already placed (smallest adequate hole,
 *               lowest offset on ties).  O(n^2 log n), deterministic,
 *               and within a few percent of optimal on DNN graphs.
 *  - Exhaustive: branch-and-bound over placement orders for small
 *               instances (<= kExhaustiveLimit tensors), pruned by the
 *               live-peak lower bound; falls back to Greedy above the
 *               limit.  Exists to measure the greedy gap, not to run
 *               on real models.
 *
 * The planner is pure: it never touches the memory system.  Callers
 * (the `planned` baseline policy, Sentinel's co-allocation seam, the
 * CLI `plan` subcommand, bench_plan) map the returned offsets onto
 * their own base address.
 */

#ifndef SENTINEL_PLAN_OFFSET_PLANNER_HH
#define SENTINEL_PLAN_OFFSET_PLANNER_HH

#include <cstdint>
#include <string>
#include <vector>

namespace sentinel::df {
class Graph;
}

namespace sentinel::plan {

/** One tensor as the planner sees it: a size and a use interval. */
struct PlanTensor {
    std::uint32_t id = 0;    ///< caller-defined (e.g. df::TensorId)
    std::uint64_t bytes = 0; ///< raw size; the planner aligns it
    int first = 0;           ///< first use (inclusive)
    int last = 0;            ///< last use (inclusive)

    /** Inclusive interval overlap — the "conflict" edge relation. */
    bool
    overlaps(const PlanTensor &o) const
    {
        return first <= o.last && o.first <= last;
    }
};

enum class Solver {
    Greedy,     ///< largest-first best-fit (the default)
    Exhaustive, ///< branch-and-bound, small instances only
};

const char *solverName(Solver s);

/** Result of one offset assignment. */
struct OffsetPlan {
    /** Byte offset per input tensor (parallel to the input vector). */
    std::vector<std::uint64_t> offsets;

    /** High-water mark: max over tensors of offset + aligned size. */
    std::uint64_t footprint = 0;

    /**
     * Lower bound: the max over time of the total aligned bytes live
     * at once.  No assignment can beat this; footprint == live_peak
     * means the plan is provably optimal.
     */
    std::uint64_t live_peak = 0;

    Solver solver = Solver::Greedy;

    /** Fraction of the footprint lost to placement holes (0 = tight). */
    double
    fragmentation() const
    {
        if (footprint == 0)
            return 0.0;
        return 1.0 - static_cast<double>(live_peak) /
                         static_cast<double>(footprint);
    }
};

/** Instances at most this large may use Solver::Exhaustive. */
constexpr std::size_t kExhaustiveLimit = 12;

/**
 * Assign offsets to @p tensors.  Sizes are rounded up to @p align and
 * every offset is a multiple of @p align.  Deterministic: equal inputs
 * produce equal plans.  An Exhaustive request on an instance larger
 * than kExhaustiveLimit silently degrades to Greedy (recorded in
 * OffsetPlan::solver).
 */
OffsetPlan assignOffsets(const std::vector<PlanTensor> &tensors,
                         Solver solver = Solver::Greedy,
                         std::uint64_t align = 64);

/**
 * Check that @p plan is sound for @p tensors: every pair of tensors
 * with overlapping lifetimes occupies disjoint byte ranges, and the
 * recorded footprint matches the placement.  @p why (optional)
 * receives the first failure.  O(n^2); test/CLI use only.
 */
bool validatePlan(const std::vector<PlanTensor> &tensors,
                  const OffsetPlan &plan, std::uint64_t align = 64,
                  std::string *why = nullptr);

/**
 * Extract the planner's view of a finalized graph: every
 * non-preallocated tensor with a [first_op, last_op] lifetime, plus
 * (when @p include_preallocated) the preallocated tensors as
 * always-live [0, numOps) intervals.  When @p long_lived_only is set,
 * short-lived tensors (Sentinel's reserved-pool class) are skipped —
 * that subset is exactly the one Sentinel's co-allocation step lays
 * out.
 */
std::vector<PlanTensor> tensorsFromGraph(const df::Graph &graph,
                                         bool include_preallocated,
                                         bool long_lived_only);

} // namespace sentinel::plan

#endif // SENTINEL_PLAN_OFFSET_PLANNER_HH
