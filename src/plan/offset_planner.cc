#include "plan/offset_planner.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"
#include "dataflow/graph.hh"

namespace sentinel::plan {

namespace {

std::uint64_t
alignUp(std::uint64_t v, std::uint64_t align)
{
    return (v + align - 1) / align * align;
}

/**
 * Max over time of the total aligned bytes simultaneously live: sweep
 * the birth/death events of every tensor in time order, births before
 * deaths at the same index (inclusive intervals touching at one index
 * do overlap).
 */
std::uint64_t
livePeak(const std::vector<PlanTensor> &tensors, std::uint64_t align)
{
    // (time, +1 birth / -1 death, bytes); births sort before deaths.
    struct Ev {
        int time;
        int kind; // 0 = birth, 1 = death
        std::uint64_t bytes;
    };
    std::vector<Ev> evs;
    evs.reserve(tensors.size() * 2);
    for (const PlanTensor &t : tensors) {
        std::uint64_t b = alignUp(t.bytes, align);
        evs.push_back({ t.first, 0, b });
        evs.push_back({ t.last, 1, b });
    }
    std::sort(evs.begin(), evs.end(), [](const Ev &a, const Ev &b) {
        if (a.time != b.time)
            return a.time < b.time;
        return a.kind < b.kind;
    });
    std::uint64_t live = 0;
    std::uint64_t peak = 0;
    for (const Ev &e : evs) {
        if (e.kind == 0) {
            live += e.bytes;
            peak = std::max(peak, live);
        } else {
            live -= e.bytes;
        }
    }
    return peak;
}

/**
 * Place one tensor of @p bytes among the already-placed conflicting
 * regions in @p busy (sorted by offset, possibly overlapping since
 * non-conflicting tensors were filtered out by the caller): best-fit
 * hole, lowest offset on ties, end of the span when no hole fits.
 */
std::uint64_t
placeBestFit(std::vector<std::pair<std::uint64_t, std::uint64_t>> &busy,
             std::uint64_t bytes)
{
    std::sort(busy.begin(), busy.end());
    std::uint64_t best_off = 0;
    std::uint64_t best_gap = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t cursor = 0; // end of the merged busy prefix
    for (const auto &[off, end] : busy) {
        if (off > cursor) {
            std::uint64_t gap = off - cursor;
            if (gap >= bytes && gap < best_gap) {
                best_gap = gap;
                best_off = cursor;
            }
        }
        cursor = std::max(cursor, end);
    }
    if (best_gap != std::numeric_limits<std::uint64_t>::max())
        return best_off;
    return cursor; // append past the last conflicting byte
}

OffsetPlan
greedyPlan(const std::vector<PlanTensor> &tensors, std::uint64_t align)
{
    OffsetPlan plan;
    plan.solver = Solver::Greedy;
    plan.offsets.assign(tensors.size(), 0);
    plan.live_peak = livePeak(tensors, align);

    // Largest first; ties by id then input position for determinism.
    std::vector<std::size_t> order(tensors.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  if (tensors[a].bytes != tensors[b].bytes)
                      return tensors[a].bytes > tensors[b].bytes;
                  if (tensors[a].id != tensors[b].id)
                      return tensors[a].id < tensors[b].id;
                  return a < b;
              });

    std::vector<std::size_t> placed;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> busy;
    placed.reserve(tensors.size());
    for (std::size_t i : order) {
        const PlanTensor &t = tensors[i];
        std::uint64_t bytes = alignUp(t.bytes, align);
        busy.clear();
        for (std::size_t j : placed)
            if (tensors[j].overlaps(t))
                busy.emplace_back(plan.offsets[j],
                                  plan.offsets[j] +
                                      alignUp(tensors[j].bytes, align));
        std::uint64_t off = placeBestFit(busy, bytes);
        plan.offsets[i] = off;
        plan.footprint = std::max(plan.footprint, off + bytes);
        placed.push_back(i);
    }
    return plan;
}

/**
 * Branch-and-bound: depth-first over placement orders; each step
 * places one not-yet-placed tensor at its lowest feasible offset.
 * Prune when the running footprint cannot beat the incumbent.  The
 * classic result that some optimal solution is reachable by
 * lowest-feasible placement under *some* order makes this exact.
 */
struct BnB {
    const std::vector<PlanTensor> &tensors;
    std::uint64_t align;
    std::vector<std::uint64_t> cur;
    std::vector<bool> used;
    std::vector<std::uint64_t> best_offsets;
    std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t lower = 0;

    explicit BnB(const std::vector<PlanTensor> &t, std::uint64_t a)
        : tensors(t), align(a), cur(t.size(), 0), used(t.size(), false)
    {
    }

    std::uint64_t
    lowestFeasible(std::size_t i)
    {
        std::vector<std::pair<std::uint64_t, std::uint64_t>> busy;
        for (std::size_t j = 0; j < tensors.size(); ++j)
            if (used[j] && tensors[j].overlaps(tensors[i]))
                busy.emplace_back(cur[j],
                                  cur[j] +
                                      alignUp(tensors[j].bytes, align));
        std::sort(busy.begin(), busy.end());
        std::uint64_t bytes = alignUp(tensors[i].bytes, align);
        std::uint64_t cursor = 0;
        for (const auto &[off, end] : busy) {
            if (off > cursor && off - cursor >= bytes)
                return cursor;
            cursor = std::max(cursor, end);
        }
        return cursor;
    }

    void
    dfs(std::size_t depth, std::uint64_t footprint)
    {
        if (footprint >= best)
            return; // cannot improve
        if (depth == tensors.size()) {
            best = footprint;
            best_offsets = cur;
            return;
        }
        for (std::size_t i = 0; i < tensors.size(); ++i) {
            if (used[i])
                continue;
            std::uint64_t off = lowestFeasible(i);
            std::uint64_t end = off + alignUp(tensors[i].bytes, align);
            used[i] = true;
            cur[i] = off;
            dfs(depth + 1, std::max(footprint, end));
            used[i] = false;
            if (best == lower)
                return; // proven optimal, stop searching
        }
    }
};

OffsetPlan
exhaustivePlan(const std::vector<PlanTensor> &tensors,
               std::uint64_t align)
{
    // Seed the incumbent with the greedy plan: correct from the start
    // and a tight pruning bound.
    OffsetPlan plan = greedyPlan(tensors, align);
    plan.solver = Solver::Exhaustive;
    if (tensors.empty())
        return plan;

    BnB bnb(tensors, align);
    bnb.best = plan.footprint;
    bnb.best_offsets = plan.offsets;
    bnb.lower = plan.live_peak;
    bnb.dfs(0, 0);
    plan.offsets = bnb.best_offsets;
    plan.footprint = bnb.best;
    return plan;
}

} // namespace

const char *
solverName(Solver s)
{
    return s == Solver::Greedy ? "greedy" : "exhaustive";
}

OffsetPlan
assignOffsets(const std::vector<PlanTensor> &tensors, Solver solver,
              std::uint64_t align)
{
    SENTINEL_ASSERT(align > 0, "align must be positive");
    for (const PlanTensor &t : tensors)
        SENTINEL_ASSERT(t.first <= t.last,
                        "tensor %u has inverted lifetime [%d, %d]",
                        t.id, t.first, t.last);
    if (solver == Solver::Exhaustive &&
        tensors.size() <= kExhaustiveLimit)
        return exhaustivePlan(tensors, align);
    return greedyPlan(tensors, align);
}

bool
validatePlan(const std::vector<PlanTensor> &tensors,
             const OffsetPlan &plan, std::uint64_t align,
             std::string *why)
{
    auto fail = [&](std::string msg) {
        if (why)
            *why = std::move(msg);
        return false;
    };
    if (plan.offsets.size() != tensors.size())
        return fail(strprintf("plan has %zu offsets for %zu tensors",
                              plan.offsets.size(), tensors.size()));
    std::uint64_t footprint = 0;
    for (std::size_t i = 0; i < tensors.size(); ++i) {
        if (plan.offsets[i] % align != 0)
            return fail(strprintf("tensor %u offset %llu not %llu-aligned",
                                  tensors[i].id,
                                  static_cast<unsigned long long>(
                                      plan.offsets[i]),
                                  static_cast<unsigned long long>(align)));
        footprint = std::max(footprint, plan.offsets[i] +
                                            alignUp(tensors[i].bytes,
                                                    align));
    }
    if (footprint != plan.footprint)
        return fail(strprintf(
            "recorded footprint %llu != placement high-water %llu",
            static_cast<unsigned long long>(plan.footprint),
            static_cast<unsigned long long>(footprint)));
    if (plan.footprint < plan.live_peak)
        return fail(strprintf(
            "footprint %llu below the live-peak lower bound %llu",
            static_cast<unsigned long long>(plan.footprint),
            static_cast<unsigned long long>(plan.live_peak)));
    for (std::size_t i = 0; i < tensors.size(); ++i) {
        std::uint64_t ai = plan.offsets[i];
        std::uint64_t bi = ai + alignUp(tensors[i].bytes, align);
        for (std::size_t j = i + 1; j < tensors.size(); ++j) {
            if (!tensors[i].overlaps(tensors[j]))
                continue;
            std::uint64_t aj = plan.offsets[j];
            std::uint64_t bj = aj + alignUp(tensors[j].bytes, align);
            if (ai < bj && aj < bi)
                return fail(strprintf(
                    "tensors %u and %u overlap in time and share bytes "
                    "[%llu, %llu) x [%llu, %llu)",
                    tensors[i].id, tensors[j].id,
                    static_cast<unsigned long long>(ai),
                    static_cast<unsigned long long>(bi),
                    static_cast<unsigned long long>(aj),
                    static_cast<unsigned long long>(bj)));
        }
    }
    return true;
}

std::vector<PlanTensor>
tensorsFromGraph(const df::Graph &graph, bool include_preallocated,
                 bool long_lived_only)
{
    SENTINEL_ASSERT(graph.finalized(),
                    "planner needs a finalized graph");
    std::vector<PlanTensor> out;
    out.reserve(graph.numTensors());
    int last_op = static_cast<int>(graph.numOps()) - 1;
    for (const df::TensorDesc &t : graph.tensors()) {
        PlanTensor p;
        p.id = t.id;
        p.bytes = t.bytes;
        if (t.preallocated) {
            if (!include_preallocated)
                continue;
            p.first = 0;
            p.last = last_op;
        } else {
            if (long_lived_only && t.shortLived())
                continue;
            if (t.first_op < 0)
                continue; // dead tensor: never referenced
            p.first = t.first_op;
            p.last = t.last_op;
        }
        out.push_back(p);
    }
    return out;
}

} // namespace sentinel::plan
