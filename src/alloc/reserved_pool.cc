#include "alloc/reserved_pool.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sentinel::alloc {

ReservedPool::ReservedPool(mem::VirtAddr base, std::uint64_t capacity)
    // The address region is twice the byte capacity: canFit() bounds
    // *bytes in use*, but first-fit fragmentation can push the bump
    // pointer past the ideal packing.  Extra address space absorbs
    // that; occupancy accounting still limits the pool to `capacity`.
    : capacity_(capacity), arena_(base, 2 * capacity)
{
    SENTINEL_ASSERT(base % mem::kPageSize == 0,
                    "pool base must be page-aligned");
    SENTINEL_ASSERT(capacity % mem::kPageSize == 0,
                    "pool capacity must be page-aligned");
}

bool
ReservedPool::canFit(std::uint64_t bytes) const
{
    return arena_.bytesInUse() + bytes <= capacity_;
}

mem::VirtAddr
ReservedPool::allocate(std::uint64_t bytes)
{
    if (!canFit(bytes))
        return kInvalidAddr;
    mem::VirtAddr addr = arena_.tryAllocate(bytes, 64);
    if (addr == alloc::VirtualArena::kInvalidAddr)
        return kInvalidAddr;
    peak_use_ = std::max(peak_use_, arena_.bytesInUse());
    return addr;
}

void
ReservedPool::free(mem::VirtAddr addr, std::uint64_t bytes)
{
    arena_.free(addr, bytes);
    // The pool drains completely between bursts of short-lived
    // tensors; resetting then bounds fragmentation drift, keeping the
    // region reusable forever ("the space is reused throughout the
    // training", Sec. IV-C).
    if (arena_.bytesInUse() == 0)
        arena_.reset();
}

bool
ReservedPool::containsPage(mem::PageId page) const
{
    mem::PageId first = mem::pageOf(arena_.base());
    mem::PageId end = mem::pageCeil(arena_.base() + 2 * capacity_);
    return page >= first && page < end;
}

} // namespace sentinel::alloc
