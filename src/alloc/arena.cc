#include "alloc/arena.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sentinel::alloc {

namespace {

constexpr mem::VirtAddr
alignUp(mem::VirtAddr addr, std::uint64_t align)
{
    return (addr + align - 1) & ~(align - 1);
}

} // namespace

VirtualArena::VirtualArena(mem::VirtAddr base, std::uint64_t capacity)
    : base_(base), capacity_(capacity), bump_(base), high_water_(base)
{
}

mem::VirtAddr
VirtualArena::allocate(std::uint64_t bytes, std::uint64_t align)
{
    mem::VirtAddr addr = tryAllocate(bytes, align);
    SENTINEL_ASSERT(addr != kInvalidAddr,
                    "arena exhausted: need %llu bytes",
                    static_cast<unsigned long long>(bytes));
    return addr;
}

mem::VirtAddr
VirtualArena::tryAllocate(std::uint64_t bytes, std::uint64_t align)
{
    SENTINEL_ASSERT(bytes > 0, "zero-byte allocation");
    SENTINEL_ASSERT(align > 0 && (align & (align - 1)) == 0,
                    "alignment %llu is not a power of two",
                    static_cast<unsigned long long>(align));

    // First fit over the free list (address order, like the original
    // map-based list).  The hole is trimmed in place: the head cut
    // stays in the same slot, the tail cut replaces it or is inserted
    // right after, so no separate insertFree() walk is needed.
    for (std::size_t i = 0; i < free_list_.size(); ++i) {
        mem::VirtAddr block = free_list_[i].addr;
        std::uint64_t size = free_list_[i].size;
        mem::VirtAddr aligned = alignUp(block, align);
        if (aligned + bytes > block + size)
            continue;

        std::uint64_t head = aligned - block;
        std::uint64_t tail = (block + size) - (aligned + bytes);
        if (head > 0 && tail > 0) {
            free_list_[i].size = head;
            free_list_.insert(free_list_.begin() +
                                  static_cast<std::ptrdiff_t>(i + 1),
                              FreeBlock{ aligned + bytes, tail });
        } else if (head > 0) {
            free_list_[i].size = head;
        } else if (tail > 0) {
            free_list_[i] = FreeBlock{ aligned + bytes, tail };
        } else {
            free_list_.erase(free_list_.begin() +
                             static_cast<std::ptrdiff_t>(i));
        }
        in_use_ += bytes;
        return aligned;
    }

    // Bump allocation.
    mem::VirtAddr aligned = alignUp(bump_, align);
    if (aligned + bytes > base_ + capacity_)
        return kInvalidAddr;
    if (aligned > bump_)
        insertFree(bump_, aligned - bump_);
    bump_ = aligned + bytes;
    high_water_ = std::max(high_water_, bump_);
    in_use_ += bytes;
    return aligned;
}

void
VirtualArena::reset()
{
    SENTINEL_ASSERT(in_use_ == 0, "reset() with %llu bytes still in use",
                    static_cast<unsigned long long>(in_use_));
    bump_ = base_;
    free_list_.clear();
}

void
VirtualArena::insertFree(mem::VirtAddr addr, std::uint64_t bytes)
{
    auto pos = std::lower_bound(
        free_list_.begin(), free_list_.end(), addr,
        [](const FreeBlock &b, mem::VirtAddr a) { return b.addr < a; });
    // A freed range must be disjoint from every existing hole.  The
    // boundary cases (range ends exactly where a hole starts, or starts
    // exactly where one ends) are legal and coalesce below; anything
    // tighter is a double free or an overlapping free, which the old
    // exact-address check missed — e.g. freeing [150, 250) while
    // [100, 200) sits on the list used to splice in an overlapping
    // block that no later coalesce could ever repair.
    SENTINEL_ASSERT(pos == free_list_.end() || addr + bytes <= pos->addr,
                    "free of [%llu, %llu) overlaps free block "
                    "[%llu, %llu)",
                    static_cast<unsigned long long>(addr),
                    static_cast<unsigned long long>(addr + bytes),
                    static_cast<unsigned long long>(pos->addr),
                    static_cast<unsigned long long>(pos->addr + pos->size));
    SENTINEL_ASSERT(pos == free_list_.begin() ||
                        std::prev(pos)->addr + std::prev(pos)->size <=
                            addr,
                    "free of [%llu, %llu) overlaps free block "
                    "[%llu, %llu)",
                    static_cast<unsigned long long>(addr),
                    static_cast<unsigned long long>(addr + bytes),
                    static_cast<unsigned long long>(std::prev(pos)->addr),
                    static_cast<unsigned long long>(
                        std::prev(pos)->addr + std::prev(pos)->size));

    bool merge_prev = pos != free_list_.begin() &&
                      std::prev(pos)->addr + std::prev(pos)->size == addr;
    bool merge_next =
        pos != free_list_.end() && addr + bytes == pos->addr;

    if (merge_prev && merge_next) {
        std::prev(pos)->size += bytes + pos->size;
        free_list_.erase(pos);
    } else if (merge_prev) {
        std::prev(pos)->size += bytes;
    } else if (merge_next) {
        pos->addr = addr;
        pos->size += bytes;
    } else {
        free_list_.insert(pos, FreeBlock{ addr, bytes });
    }
}

void
VirtualArena::free(mem::VirtAddr addr, std::uint64_t bytes)
{
    SENTINEL_ASSERT(bytes > 0, "zero-byte free");
    SENTINEL_ASSERT(addr >= base_ && addr + bytes <= bump_,
                    "free of range outside arena");
    SENTINEL_ASSERT(bytes <= in_use_, "arena free underflow");
    insertFree(addr, bytes);
    in_use_ -= bytes;
}

} // namespace sentinel::alloc
