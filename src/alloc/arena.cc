#include "alloc/arena.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sentinel::alloc {

namespace {

constexpr mem::VirtAddr
alignUp(mem::VirtAddr addr, std::uint64_t align)
{
    return (addr + align - 1) & ~(align - 1);
}

} // namespace

VirtualArena::VirtualArena(mem::VirtAddr base, std::uint64_t capacity)
    : base_(base), capacity_(capacity), bump_(base), high_water_(base)
{
}

mem::VirtAddr
VirtualArena::allocate(std::uint64_t bytes, std::uint64_t align)
{
    mem::VirtAddr addr = tryAllocate(bytes, align);
    SENTINEL_ASSERT(addr != kInvalidAddr,
                    "arena exhausted: need %llu bytes",
                    static_cast<unsigned long long>(bytes));
    return addr;
}

mem::VirtAddr
VirtualArena::tryAllocate(std::uint64_t bytes, std::uint64_t align)
{
    SENTINEL_ASSERT(bytes > 0, "zero-byte allocation");
    SENTINEL_ASSERT(align > 0 && (align & (align - 1)) == 0,
                    "alignment %llu is not a power of two",
                    static_cast<unsigned long long>(align));

    // First fit over the free list.
    for (auto it = free_list_.begin(); it != free_list_.end(); ++it) {
        mem::VirtAddr block = it->first;
        std::uint64_t size = it->second;
        mem::VirtAddr aligned = alignUp(block, align);
        if (aligned + bytes > block + size)
            continue;

        free_list_.erase(it);
        if (aligned > block)
            insertFree(block, aligned - block);
        std::uint64_t tail = (block + size) - (aligned + bytes);
        if (tail > 0)
            insertFree(aligned + bytes, tail);
        in_use_ += bytes;
        return aligned;
    }

    // Bump allocation.
    mem::VirtAddr aligned = alignUp(bump_, align);
    if (aligned + bytes > base_ + capacity_)
        return kInvalidAddr;
    if (aligned > bump_)
        insertFree(bump_, aligned - bump_);
    bump_ = aligned + bytes;
    high_water_ = std::max(high_water_, bump_);
    in_use_ += bytes;
    return aligned;
}

void
VirtualArena::reset()
{
    SENTINEL_ASSERT(in_use_ == 0, "reset() with %llu bytes still in use",
                    static_cast<unsigned long long>(in_use_));
    bump_ = base_;
    free_list_.clear();
}

void
VirtualArena::insertFree(mem::VirtAddr addr, std::uint64_t bytes)
{
    auto [it, inserted] = free_list_.emplace(addr, bytes);
    SENTINEL_ASSERT(inserted, "double free at %llu",
                    static_cast<unsigned long long>(addr));

    // Coalesce with successor.
    auto next = std::next(it);
    if (next != free_list_.end() &&
        it->first + it->second == next->first) {
        it->second += next->second;
        free_list_.erase(next);
    }
    // Coalesce with predecessor.
    if (it != free_list_.begin()) {
        auto prev = std::prev(it);
        if (prev->first + prev->second == it->first) {
            prev->second += it->second;
            free_list_.erase(it);
        }
    }
}

void
VirtualArena::free(mem::VirtAddr addr, std::uint64_t bytes)
{
    SENTINEL_ASSERT(bytes > 0, "zero-byte free");
    SENTINEL_ASSERT(addr >= base_ && addr + bytes <= bump_,
                    "free of range outside arena");
    SENTINEL_ASSERT(bytes <= in_use_, "arena free underflow");
    insertFree(addr, bytes);
    in_use_ -= bytes;
}

} // namespace sentinel::alloc
