/**
 * @file
 * Virtual address allocation.
 *
 * The arena hands out address ranges in a simulated virtual address
 * space.  It is deliberately a *packing* allocator with a first-fit
 * free list: freed ranges are recycled, so short-lived temporaries
 * reuse addresses next to long-lived activations — which is precisely
 * how TensorFlow's BFC allocator creates the page-level false sharing
 * the paper measures (Observation 3).
 *
 * Sentinel's data reorganization is expressed *through* this class by
 * using multiple arenas (one per co-allocation class) and page
 * alignment, rather than by a different allocator.
 */

#ifndef SENTINEL_ALLOC_ARENA_HH
#define SENTINEL_ALLOC_ARENA_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "mem/page.hh"

namespace sentinel::alloc {

class VirtualArena
{
  public:
    /**
     * @param base start of this arena's address region.  Distinct
     *        arenas must use disjoint regions; the conventional layout
     *        is `index << 44`.
     * @param capacity size of the region.
     */
    explicit VirtualArena(mem::VirtAddr base,
                          std::uint64_t capacity = 1ull << 44);

    /**
     * Allocate @p bytes aligned to @p align (power of two).
     * First-fit over the free list, then bump allocation.
     * Panics if the arena region is exhausted.
     */
    mem::VirtAddr allocate(std::uint64_t bytes, std::uint64_t align = 64);

    /** Like allocate(), but returns kInvalidAddr when out of space. */
    mem::VirtAddr tryAllocate(std::uint64_t bytes,
                              std::uint64_t align = 64);

    /** Forget all allocations (callers must know nothing is live). */
    void reset();

    static constexpr mem::VirtAddr kInvalidAddr = ~0ull;

    /** Return a range previously handed out by allocate(). */
    void free(mem::VirtAddr addr, std::uint64_t bytes);

    std::uint64_t bytesInUse() const { return in_use_; }
    /** High-water mark of address-space consumption (footprint). */
    std::uint64_t highWater() const { return high_water_ - base_; }
    mem::VirtAddr base() const { return base_; }

    /** Number of blocks currently on the free list (for tests). */
    std::size_t freeBlocks() const { return free_list_.size(); }

    /** Address-ordered snapshot of the free list as (addr, size)
     *  pairs — the differential property test compares it for exact
     *  hole-set equality against a reference allocator. */
    std::vector<std::pair<mem::VirtAddr, std::uint64_t>>
    freeRanges() const
    {
        std::vector<std::pair<mem::VirtAddr, std::uint64_t>> out;
        out.reserve(free_list_.size());
        for (const FreeBlock &b : free_list_)
            out.emplace_back(b.addr, b.size);
        return out;
    }

  private:
    struct FreeBlock {
        mem::VirtAddr addr;
        std::uint64_t size;
    };

    /** Insert a free range, coalescing with adjacent free blocks. */
    void insertFree(mem::VirtAddr addr, std::uint64_t bytes);

    mem::VirtAddr base_;
    std::uint64_t capacity_;
    mem::VirtAddr bump_;       ///< first never-allocated address
    mem::VirtAddr high_water_;
    std::uint64_t in_use_ = 0;

    /**
     * Address-sorted free blocks, coalesced on free.  A sorted vector
     * rather than a map: the list stays short (pools reset when they
     * drain), first-fit is a linear scan either way, and reusing the
     * vector's capacity keeps the steady-state alloc/free cycle free of
     * heap traffic — map node churn was ~1% of a profiled step.
     */
    std::vector<FreeBlock> free_list_;
};

} // namespace sentinel::alloc

#endif // SENTINEL_ALLOC_ARENA_HH
