/**
 * @file
 * Sentinel's reserved fast-memory space for short-lived tensors.
 *
 * Short-lived tensors are allocated in a contiguous region of fast
 * memory, never migrated, and the region is reused as tensors are
 * allocated and freed throughout training (Sec. IV-C).  The pool's
 * capacity is RS — the peak short-lived consumption per migration
 * interval determined from the profile — and the interval planner's
 * space constraint (Eq. 1) budgets prefetching against S - RS.
 */

#ifndef SENTINEL_ALLOC_RESERVED_POOL_HH
#define SENTINEL_ALLOC_RESERVED_POOL_HH

#include <cstdint>

#include "alloc/arena.hh"
#include "mem/page.hh"

namespace sentinel::alloc {

class ReservedPool
{
  public:
    /**
     * @param base address-region start (disjoint from other arenas).
     * @param capacity RS — the reserved fast-memory bytes.
     */
    ReservedPool(mem::VirtAddr base, std::uint64_t capacity);

    /** True if @p bytes can currently be placed in the pool. */
    bool canFit(std::uint64_t bytes) const;

    /**
     * Allocate from the reserved region.
     *
     * @return kInvalidAddr if the request does not fit (caller falls
     *         back to the overflow path) — either the byte budget or
     *         the address region (fragmentation) is exhausted.
     */
    mem::VirtAddr allocate(std::uint64_t bytes);

    static constexpr mem::VirtAddr kInvalidAddr = ~0ull;

    void free(mem::VirtAddr addr, std::uint64_t bytes);

    /** True if @p page belongs to the pool's address region. */
    bool containsPage(mem::PageId page) const;

    std::uint64_t capacity() const { return capacity_; }
    std::uint64_t bytesInUse() const { return arena_.bytesInUse(); }
    std::uint64_t peakUse() const { return peak_use_; }

  private:
    std::uint64_t capacity_;
    VirtualArena arena_;
    std::uint64_t peak_use_ = 0;
};

} // namespace sentinel::alloc

#endif // SENTINEL_ALLOC_RESERVED_POOL_HH
