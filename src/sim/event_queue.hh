/**
 * @file
 * A minimal discrete-event queue.
 *
 * The training-step executor advances simulated time itself (operations
 * are serialized within a layer), but asynchronous machinery — the
 * migration engine's completion callbacks and periodic statistics
 * sampling — runs through this queue.  Events scheduled at the same tick
 * fire in insertion order (FIFO), which keeps runs deterministic.
 *
 * The FIFO guarantee is load-bearing for multi-tenant simulation: when
 * two jobs on the server's shared node clock schedule events at the
 * SAME tick (two arrivals, a step end colliding with an arbiter poll),
 * execution order is exactly schedule order — a stable sequence number
 * breaks the tie, never container internals (tests/sim/test_event_queue.cc
 * pins the interleaving down).
 *
 * Two backends share the interface, mirroring the dense/hash page-table
 * split:
 *
 *  - Calendar (default): a calendar queue (Brown 1988).  Events hash
 *    into power-of-two time buckets by `when >> bucket_shift`; a pop
 *    walks "days" forward from the last known minimum, so in the common
 *    near-future case both schedule and pop are O(1) amortized and the
 *    bucket vectors are reused without allocation.  The bucket width
 *    re-calibrates to the observed event spacing whenever the table
 *    resizes.  Total order is still exact: within a day the minimum
 *    (when, seq) entry is selected, and a fruitless full lap falls back
 *    to a global scan (events far beyond the current horizon).
 *  - Heap (fallback): the original binary heap, kept behind
 *    Backend::Heap (or -DSENTINEL_CALENDAR_EQ=OFF) for differential
 *    testing of pop order.
 */

#ifndef SENTINEL_SIM_EVENT_QUEUE_HH
#define SENTINEL_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/units.hh"

namespace sentinel::sim {

/** Priority queue of (tick, callback) pairs with FIFO tie-breaking. */
class EventQueue
{
  public:
    using Callback = std::function<void(Tick)>;

    enum class Backend {
        Calendar, ///< calendar queue / time wheel (production)
        Heap,     ///< binary min-heap (differential fallback)
    };

    /** Build-time default: Calendar unless -DSENTINEL_CALENDAR_EQ=OFF. */
    static Backend defaultBackend();

    explicit EventQueue(Backend backend = defaultBackend());

    Backend backend() const { return backend_; }

    /** Schedule @p cb to fire at absolute time @p when. */
    void schedule(Tick when, Callback cb);

    /** @return the time of the earliest pending event, or -1 if empty. */
    Tick nextEventTick() const;

    /**
     * Run every event with tick <= @p until (events may schedule further
     * events; those are honored if they also fall within the horizon).
     *
     * @return the number of events executed.
     */
    std::size_t runUntil(Tick until);

    /** Run everything that is pending, regardless of tick. */
    std::size_t drain();

    bool empty() const { return count_ == 0; }
    std::size_t size() const { return count_; }

    /** Time of the last executed event (0 before any run). */
    Tick now() const { return now_; }

    /**
     * Discard all pending events and rewind the clock and sequence
     * counter — a fresh queue for the next simulation on the same
     * object (the server reuses one queue across runs).  Storage is
     * retained for reuse; call shrink() to release it.
     */
    void reset();

    /**
     * Release all retained storage (bucket vectors, heap array) back
     * to the allocator.  Long fuzz campaigns call this between cases
     * so one large case doesn't pin peak memory across thousands of
     * iterations.  Pending events survive: shrink() only drops *spare*
     * capacity — with events pending, the calendar rebuckets them into
     * the smallest table that fits and restarts its day-walk at the
     * earliest pending tick.
     */
    void shrink();

    /** Calendar bucket-table width (0 under the heap backend);
     *  exposed so tests can pin shrink()'s collapse. */
    std::size_t bucketCount() const { return buckets_.size(); }

  private:
    struct Entry {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    /** True if a orders strictly before b: earlier tick, then FIFO. */
    static bool
    before(const Entry &a, const Entry &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.seq < b.seq;
    }

    // --- Heap backend ---------------------------------------------------
    void heapPush(Entry &&e);
    Entry heapPop();

    // --- Calendar backend -----------------------------------------------
    std::size_t bucketOf(Tick when) const;
    void calPush(Entry &&e);
    Entry calPop();
    /** Locate the earliest entry: bucket + index, or false if empty. */
    bool calFind(std::size_t *bucket, std::size_t *index) const;
    /** Grow/recalibrate the table to fit @p count events. */
    void calResize(std::size_t nbuckets);

    /** Pop the globally earliest entry from the active backend. */
    Entry popEarliest();

    Backend backend_;

    // Heap backend state: std::make_heap over a plain vector so reset()
    // can keep the capacity (std::priority_queue hides its container).
    std::vector<Entry> heap_;

    // Calendar backend state.
    std::vector<std::vector<Entry>> buckets_;
    unsigned bucket_shift_ = 10; ///< bucket width = 2^shift ticks
    /** Lower bound on the earliest pending tick (search start). */
    Tick search_from_ = 0;

    std::size_t count_ = 0;
    std::uint64_t next_seq_ = 0;
    Tick now_ = 0;
};

} // namespace sentinel::sim

#endif // SENTINEL_SIM_EVENT_QUEUE_HH
