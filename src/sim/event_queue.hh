/**
 * @file
 * A minimal discrete-event queue.
 *
 * The training-step executor advances simulated time itself (operations
 * are serialized within a layer), but asynchronous machinery — the
 * migration engine's completion callbacks and periodic statistics
 * sampling — runs through this queue.  Events scheduled at the same tick
 * fire in insertion order (FIFO), which keeps runs deterministic.
 *
 * The FIFO guarantee is load-bearing for multi-tenant simulation: when
 * two jobs on the server's shared node clock schedule events at the
 * SAME tick (two arrivals, a step end colliding with an arbiter poll),
 * execution order is exactly schedule order — a stable sequence number
 * breaks the tie, never heap internals (tests/sim/test_event_queue.cc
 * pins the interleaving down).
 */

#ifndef SENTINEL_SIM_EVENT_QUEUE_HH
#define SENTINEL_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/units.hh"

namespace sentinel::sim {

/** Priority queue of (tick, callback) pairs with FIFO tie-breaking. */
class EventQueue
{
  public:
    using Callback = std::function<void(Tick)>;

    /** Schedule @p cb to fire at absolute time @p when. */
    void schedule(Tick when, Callback cb);

    /** @return the time of the earliest pending event, or -1 if empty. */
    Tick nextEventTick() const;

    /**
     * Run every event with tick <= @p until (events may schedule further
     * events; those are honored if they also fall within the horizon).
     *
     * @return the number of events executed.
     */
    std::size_t runUntil(Tick until);

    /** Run everything that is pending, regardless of tick. */
    std::size_t drain();

    bool empty() const { return heap_.empty(); }
    std::size_t size() const { return heap_.size(); }

    /** Time of the last executed event (0 before any run). */
    Tick now() const { return now_; }

    /** Discard all pending events and rewind the clock and sequence
     *  counter — a fresh queue for the next simulation on the same
     *  object (the server reuses one queue across runs). */
    void reset();

  private:
    struct Entry {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };
    struct Later {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    std::uint64_t next_seq_ = 0;
    Tick now_ = 0;
};

} // namespace sentinel::sim

#endif // SENTINEL_SIM_EVENT_QUEUE_HH
