#include "sim/event_queue.hh"

#include <algorithm>
#include <bit>
#include <limits>

#include "common/logging.hh"

namespace sentinel::sim {

namespace {

constexpr std::size_t kMinBuckets = 16;

/** Heap comparator: the earliest (when, seq) entry surfaces first. */
struct HeapLater {
    bool
    operator()(const auto &a, const auto &b) const
    {
        if (a.when != b.when)
            return a.when > b.when;
        return a.seq > b.seq;
    }
};

} // namespace

EventQueue::Backend
EventQueue::defaultBackend()
{
#ifdef SENTINEL_CALENDAR_EQ_OFF
    return Backend::Heap;
#else
    return Backend::Calendar;
#endif
}

EventQueue::EventQueue(Backend backend) : backend_(backend)
{
    if (backend_ == Backend::Calendar)
        buckets_.resize(kMinBuckets);
}

void
EventQueue::schedule(Tick when, Callback cb)
{
    SENTINEL_ASSERT(when >= 0, "event scheduled at negative tick %lld",
                    static_cast<long long>(when));
    Entry e{ when, next_seq_++, std::move(cb) };
    if (backend_ == Backend::Heap)
        heapPush(std::move(e));
    else
        calPush(std::move(e));
    ++count_;
    if (when < search_from_)
        search_from_ = when;
}

Tick
EventQueue::nextEventTick() const
{
    if (count_ == 0)
        return -1;
    if (backend_ == Backend::Heap)
        return heap_.front().when;
    std::size_t b, i;
    calFind(&b, &i);
    return buckets_[b][i].when;
}

std::size_t
EventQueue::runUntil(Tick until)
{
    std::size_t n = 0;
    while (count_ > 0 && nextEventTick() <= until) {
        // Move out before erasing: the callback may schedule new
        // events, which mutates the container.
        Entry e = popEarliest();
        now_ = e.when;
        e.cb(e.when);
        ++n;
    }
    return n;
}

std::size_t
EventQueue::drain()
{
    return runUntil(std::numeric_limits<Tick>::max());
}

void
EventQueue::reset()
{
    heap_.clear();
    for (auto &b : buckets_)
        b.clear();
    count_ = 0;
    next_seq_ = 0;
    now_ = 0;
    search_from_ = 0;
}

void
EventQueue::shrink()
{
    if (backend_ == Backend::Calendar) {
        if (count_ == 0) {
            // Empty: the whole table collapses back to its floor size.
            buckets_.assign(kMinBuckets, std::vector<Entry>());
        } else {
            // Pending events: rebucket into the smallest power-of-two
            // table that fits them.  calResize also re-calibrates the
            // bucket width and rewinds search_from_ to the earliest
            // pending tick — without the rewind, a day-walk starting
            // from the stale pre-shrink position could need a full
            // fruitless lap plus the min-over-fronts fallback on every
            // pop until the walk caught up.
            calResize(std::max(kMinBuckets, std::bit_ceil(count_)));
        }
        buckets_.shrink_to_fit();
        for (auto &b : buckets_)
            b.shrink_to_fit();
    }
    heap_.shrink_to_fit();
}

EventQueue::Entry
EventQueue::popEarliest()
{
    return backend_ == Backend::Heap ? heapPop() : calPop();
}

// --- Heap backend -------------------------------------------------------

void
EventQueue::heapPush(Entry &&e)
{
    heap_.push_back(std::move(e));
    std::push_heap(heap_.begin(), heap_.end(), HeapLater{});
}

EventQueue::Entry
EventQueue::heapPop()
{
    std::pop_heap(heap_.begin(), heap_.end(), HeapLater{});
    Entry e = std::move(heap_.back());
    heap_.pop_back();
    --count_;
    return e;
}

// --- Calendar backend ---------------------------------------------------

std::size_t
EventQueue::bucketOf(Tick when) const
{
    return (static_cast<std::uint64_t>(when) >> bucket_shift_) &
           (buckets_.size() - 1);
}

// Each bucket is itself a binary min-heap on (when, seq), so a bucket
// holding a same-tick cluster of k events pops in O(log k) instead of
// the O(k) rescan a flat bucket would need (and the simulator's
// migration arrivals cluster heavily).  The heap invariant also lets
// calFind inspect only bucket FRONTS: walking days in increasing
// order, an entry of the current day inside a bucket would be earlier
// than any later-day entry, so it must BE the bucket front.

void
EventQueue::calPush(Entry &&e)
{
    if (count_ >= 2 * buckets_.size())
        calResize(buckets_.size() * 2);
    std::vector<Entry> &b = buckets_[bucketOf(e.when)];
    b.push_back(std::move(e));
    std::push_heap(b.begin(), b.end(), HeapLater{});
}

bool
EventQueue::calFind(std::size_t *bucket, std::size_t *index) const
{
    if (count_ == 0)
        return false;
    const std::size_t n = buckets_.size();
    *index = 0; // heap minimum is always the bucket front

    // Walk "days" forward from the last known minimum.  A day is one
    // bucket-width window; an entry belongs to the day its tick hashes
    // from, so entries a full table-lap ahead are skipped here and
    // found by the global fallback scan below.  No remaining entry can
    // sit in an earlier day than search_from_'s (every remaining
    // (when, seq) is at least the last popped one), so the first front
    // whose day matches is the global minimum.
    std::uint64_t day =
        static_cast<std::uint64_t>(search_from_) >> bucket_shift_;
    for (std::size_t lap = 0; lap < n; ++lap, ++day) {
        const std::vector<Entry> &b = buckets_[day & (n - 1)];
        if (!b.empty() &&
            (static_cast<std::uint64_t>(b.front().when) >>
             bucket_shift_) == day) {
            *bucket = day & (n - 1);
            return true;
        }
    }

    // Nothing within one lap of the horizon: pick the earliest front
    // (each front is its bucket's minimum, so fronts cover the queue).
    bool found = false;
    for (std::size_t bi = 0; bi < n; ++bi) {
        const std::vector<Entry> &b = buckets_[bi];
        if (b.empty())
            continue;
        if (!found || before(b.front(), buckets_[*bucket].front())) {
            found = true;
            *bucket = bi;
        }
    }
    SENTINEL_ASSERT(found, "calendar count/contents out of sync");
    return true;
}

EventQueue::Entry
EventQueue::calPop()
{
    std::size_t bi, i;
    calFind(&bi, &i);
    std::vector<Entry> &b = buckets_[bi];
    std::pop_heap(b.begin(), b.end(), HeapLater{});
    Entry e = std::move(b.back());
    b.pop_back();
    --count_;
    search_from_ = e.when;
    return e;
}

void
EventQueue::calResize(std::size_t nbuckets)
{
    std::vector<Entry> all;
    all.reserve(count_);
    Tick lo = std::numeric_limits<Tick>::max();
    Tick hi = 0;
    for (auto &b : buckets_) {
        for (Entry &e : b) {
            lo = std::min(lo, e.when);
            hi = std::max(hi, e.when);
            all.push_back(std::move(e));
        }
        b.clear();
    }

    // Re-calibrate the bucket width to the observed spacing: aim for
    // about one event per day across the current span.
    if (all.size() >= 2 && hi > lo) {
        std::uint64_t gap = static_cast<std::uint64_t>(hi - lo) /
                            (all.size() - 1);
        int width = static_cast<int>(std::bit_width(gap)) - 1;
        bucket_shift_ =
            static_cast<unsigned>(std::clamp(width, 0, 40));
    }

    // The old search position was a lower bound under the old bucket
    // width; after recalibration it can lag the earliest pending event
    // by arbitrarily many of the new (narrower) days, turning every
    // pop into a fruitless full lap plus the min-over-fronts fallback.
    // The exact earliest tick is known here — restart the day-walk at
    // it.
    if (!all.empty())
        search_from_ = lo;

    buckets_.resize(nbuckets);
    for (Entry &e : all)
        buckets_[bucketOf(e.when)].push_back(std::move(e));
    for (auto &b : buckets_)
        std::make_heap(b.begin(), b.end(), HeapLater{});
}

} // namespace sentinel::sim
