#include "sim/event_queue.hh"

#include "common/logging.hh"

namespace sentinel::sim {

void
EventQueue::schedule(Tick when, Callback cb)
{
    SENTINEL_ASSERT(when >= 0, "event scheduled at negative tick %lld",
                    static_cast<long long>(when));
    heap_.push(Entry{when, next_seq_++, std::move(cb)});
}

Tick
EventQueue::nextEventTick() const
{
    return heap_.empty() ? -1 : heap_.top().when;
}

std::size_t
EventQueue::runUntil(Tick until)
{
    std::size_t n = 0;
    while (!heap_.empty() && heap_.top().when <= until) {
        // Copy out before popping: the callback may schedule new events,
        // which mutates the heap.
        Entry e = heap_.top();
        heap_.pop();
        now_ = e.when;
        e.cb(e.when);
        ++n;
    }
    return n;
}

void
EventQueue::reset()
{
    heap_ = {};
    next_seq_ = 0;
    now_ = 0;
}

std::size_t
EventQueue::drain()
{
    std::size_t n = 0;
    while (!heap_.empty()) {
        Entry e = heap_.top();
        heap_.pop();
        now_ = e.when;
        e.cb(e.when);
        ++n;
    }
    return n;
}

} // namespace sentinel::sim
