/**
 * @file
 * Time-series recording for bandwidth/occupancy traces.
 *
 * Figure 9 of the paper plots fast- and slow-memory bandwidth over one
 * training step.  The executor reports (time, bytes, channel) samples
 * here; the recorder buckets them into fixed windows so benches can
 * print a compact series.
 */

#ifndef SENTINEL_SIM_TRACE_HH
#define SENTINEL_SIM_TRACE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/units.hh"

namespace sentinel::sim {

/** One named series of bucketed byte counts over simulated time. */
class TraceRecorder
{
  public:
    /** @param bucket_width width of each aggregation window in Ticks. */
    explicit TraceRecorder(Tick bucket_width);

    /** Record @p bytes of traffic on @p series at time @p when. */
    void record(const std::string &series, Tick when, std::uint64_t bytes);

    /** Series names seen so far, sorted. */
    std::vector<std::string> seriesNames() const;

    /**
     * Bandwidth samples for @p series: one entry per bucket from time 0
     * through the last recorded bucket, in bytes/second.
     */
    std::vector<double> bandwidthSeries(const std::string &series) const;

    Tick bucketWidth() const { return bucket_width_; }

    /** Last bucket index that received any sample, over all series. */
    std::size_t numBuckets() const { return num_buckets_; }

    void clear();

  private:
    Tick bucket_width_;
    std::size_t num_buckets_ = 0;
    std::map<std::string, std::map<std::size_t, std::uint64_t>> series_;
};

} // namespace sentinel::sim

#endif // SENTINEL_SIM_TRACE_HH
