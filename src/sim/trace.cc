#include "sim/trace.hh"

#include "common/logging.hh"

namespace sentinel::sim {

TraceRecorder::TraceRecorder(Tick bucket_width) : bucket_width_(bucket_width)
{
    SENTINEL_ASSERT(bucket_width_ > 0, "bucket width must be positive");
}

void
TraceRecorder::record(const std::string &series, Tick when,
                      std::uint64_t bytes)
{
    SENTINEL_ASSERT(when >= 0, "trace sample at negative time");
    std::size_t bucket = static_cast<std::size_t>(when / bucket_width_);
    series_[series][bucket] += bytes;
    if (bucket + 1 > num_buckets_)
        num_buckets_ = bucket + 1;
}

std::vector<std::string>
TraceRecorder::seriesNames() const
{
    std::vector<std::string> names;
    names.reserve(series_.size());
    for (const auto &kv : series_)
        names.push_back(kv.first);
    return names;
}

std::vector<double>
TraceRecorder::bandwidthSeries(const std::string &series) const
{
    std::vector<double> out(num_buckets_, 0.0);
    auto it = series_.find(series);
    if (it == series_.end())
        return out;
    double seconds = toSeconds(bucket_width_);
    for (const auto &kv : it->second)
        out[kv.first] = static_cast<double>(kv.second) / seconds;
    return out;
}

void
TraceRecorder::clear()
{
    series_.clear();
    num_buckets_ = 0;
}

} // namespace sentinel::sim
