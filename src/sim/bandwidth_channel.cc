#include "sim/bandwidth_channel.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sentinel::sim {

BandwidthChannel::BandwidthChannel(std::string name, double bytes_per_sec,
                                   Tick startup_latency)
    : name_(std::move(name)), bytes_per_sec_(bytes_per_sec),
      startup_latency_(startup_latency)
{
    SENTINEL_ASSERT(bytes_per_sec_ > 0.0,
                    "channel '%s' needs positive bandwidth", name_.c_str());
    SENTINEL_ASSERT(startup_latency_ >= 0, "negative startup latency");
}

Tick
BandwidthChannel::submit(Tick ready, std::uint64_t bytes)
{
    return submitWithStartup(ready, bytes, startup_latency_);
}

Tick
BandwidthChannel::submitWithStartup(Tick ready, std::uint64_t bytes,
                                    Tick startup)
{
    Tick start = std::max(ready, busy_until_);
    Tick duration = startup + transferTime(bytes, bytes_per_sec_);
    busy_until_ = start + duration;
    bytes_transferred_ += bytes;
    num_transfers_ += 1;
    busy_time_ += duration;
    return busy_until_;
}

Tick
BandwidthChannel::estimateCompletion(Tick ready, std::uint64_t bytes) const
{
    Tick start = std::max(ready, busy_until_);
    return start + startup_latency_ + transferTime(bytes, bytes_per_sec_);
}

void
BandwidthChannel::setBandwidth(double bytes_per_sec)
{
    SENTINEL_ASSERT(bytes_per_sec > 0.0,
                    "channel '%s' needs positive bandwidth", name_.c_str());
    bytes_per_sec_ = bytes_per_sec;
}

void
BandwidthChannel::blockUntil(Tick until)
{
    if (until <= busy_until_) return;
    busy_time_ += until - busy_until_;
    busy_until_ = until;
}

void
BandwidthChannel::reset()
{
    busy_until_ = 0;
    bytes_transferred_ = 0;
    num_transfers_ = 0;
    busy_time_ = 0;
}

} // namespace sentinel::sim
