/**
 * @file
 * A serialized bandwidth link.
 *
 * Models one DMA-like channel: transfers queue behind each other and
 * each takes bytes/bandwidth time.  Sentinel's migration engine uses two
 * of these (one per direction, matching the paper's two helper threads);
 * the GPU configurations use them for the PCIe link.
 */

#ifndef SENTINEL_SIM_BANDWIDTH_CHANNEL_HH
#define SENTINEL_SIM_BANDWIDTH_CHANNEL_HH

#include <cstdint>
#include <string>

#include "common/units.hh"

namespace sentinel::sim {

/** One serialized transfer link with busy-until semantics. */
class BandwidthChannel
{
  public:
    /**
     * @param name diagnostic name ("promote", "demote", "pcie-h2d"...).
     * @param bytes_per_sec link bandwidth.
     * @param startup_latency fixed per-transfer setup cost (e.g. the
     *        move_pages() syscall or a cudaMemcpyAsync launch).
     */
    BandwidthChannel(std::string name, double bytes_per_sec,
                     Tick startup_latency = 0);

    /**
     * Enqueue a transfer that may begin no earlier than @p ready.
     *
     * @return absolute completion time.
     */
    Tick submit(Tick ready, std::uint64_t bytes);

    /** submit() with an explicit setup cost (0 = batched continuation). */
    Tick submitWithStartup(Tick ready, std::uint64_t bytes,
                           Tick startup);

    /** Earliest time a new transfer submitted at @p ready could finish. */
    Tick estimateCompletion(Tick ready, std::uint64_t bytes) const;

    /** Time the channel becomes idle given everything submitted so far. */
    Tick busyUntil() const { return busy_until_; }

    /** Total payload bytes accepted. */
    std::uint64_t bytesTransferred() const { return bytes_transferred_; }

    /** Total number of submit() calls. */
    std::uint64_t numTransfers() const { return num_transfers_; }

    /** Accumulated busy time (transfer + startup). */
    Tick busyTime() const { return busy_time_; }

    double bandwidth() const { return bytes_per_sec_; }
    const std::string &name() const { return name_; }

    /**
     * Re-rate the link mid-run (fault injection / dynamic topology).
     * Only transfers submitted afterwards see the new rate; work already
     * queued keeps its completion time.
     */
    void setBandwidth(double bytes_per_sec);

    /**
     * Block the channel until at least @p until (one-shot outage).
     * Transfers already submitted keep their completion times (their
     * data is on the wire); new submissions queue behind the outage.
     * The blocked interval counts as busy time so utilisation stats
     * reflect it.
     */
    void blockUntil(Tick until);

    /** Forget queued work and stats (new experiment, same link). */
    void reset();

  private:
    std::string name_;
    double bytes_per_sec_;
    Tick startup_latency_;

    Tick busy_until_ = 0;
    std::uint64_t bytes_transferred_ = 0;
    std::uint64_t num_transfers_ = 0;
    Tick busy_time_ = 0;
};

} // namespace sentinel::sim

#endif // SENTINEL_SIM_BANDWIDTH_CHANNEL_HH
