/**
 * @file
 * Deterministic, seeded fault injection ("chaos mode").
 *
 * Sentinel's whole design leans on one profiled step staying
 * representative of the rest of training; the online-guidance
 * literature (arXiv:2110.02150, arXiv:2302.09468) shows that static
 * profiles go stale.  This module manufactures exactly that staleness,
 * on purpose and reproducibly, so the divergence-recovery machinery in
 * the policy stack can be exercised and regression-tested:
 *
 *  - `bw`:     degrade a migration channel's bandwidth from a given
 *              step onward (link contention, thermal throttling);
 *  - `stall`:  block a migration channel for a fixed duration at one
 *              step's start (a hiccup: page-migration daemon descheduled,
 *              PCIe reset);
 *  - `shrink`: reduce a tier's effective capacity from a step onward
 *              (a co-tenant claims memory); `tier=` selects which tier
 *              of the chain (default 0 = fast);
 *  - `jitter`: perturb per-layer compute times with a seeded
 *              per-(step, layer) multiplier (input-dependent kernels);
 *  - `drift`:  scale per-op memory traffic (batch/shape drift away
 *              from the profiled step).
 *
 * Everything is a pure function of (spec, seed, step, layer) — no
 * global RNG state — so a chaos run is bit-identical across repeats
 * and across serial/parallel sweep harnesses.
 */

#ifndef SENTINEL_SIM_FAULT_INJECTOR_HH
#define SENTINEL_SIM_FAULT_INJECTOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hh"

namespace sentinel::sim {

enum class FaultKind : std::uint8_t {
    BwDegrade,      ///< channel bandwidth *= factor, from `step` onward
    ChannelStall,   ///< channel blocked for `duration` at `step` begin
    CapacityShrink, ///< fast capacity *= factor, from `step` onward
    ComputeJitter,  ///< layer compute *= U[1-amp, 1+amp], from `step`
    TrafficDrift,   ///< per-op traffic *= factor, from `step` onward
};

/** Which migration channel a bw/stall fault applies to. */
enum class ChannelSel : std::uint8_t { Promote, Demote, Both };

/** Longest tier chain a shrink fault can address (mem::kMaxTiers). */
constexpr unsigned kMaxFaultTiers = 8;

/** One scheduled fault. */
struct FaultEvent {
    FaultKind kind = FaultKind::BwDegrade;
    int step = 0;                          ///< first step the fault is live
    ChannelSel channel = ChannelSel::Both; ///< bw / stall only
    double factor = 1.0;                   ///< bw / shrink / drift scale
    double amplitude = 0.0;                ///< jitter half-width
    Tick duration = 0;                     ///< stall length
    unsigned tier = 0;                     ///< shrink target tier index
};

/**
 * A parsed `--chaos` specification.
 *
 * Grammar (clauses separated by ';', keys by ','):
 *
 *     bw:step=6,factor=0.5[,ch=promote|demote|both]
 *     stall:step=7,ms=2[,ch=...]
 *     shrink:step=6,factor=0.7[,tier=1]
 *     jitter:step=3,amp=0.2
 *     drift:step=5,factor=1.3
 *
 * Unknown clause or key names are fatal (they are experiment
 * configuration, and a typo must not silently run the wrong chaos).
 */
struct FaultSpec {
    std::vector<FaultEvent> events;
    std::uint64_t seed = 0x5e97195eull;

    /** Parse @p text; throws (via SENTINEL_FATAL) on malformed input. */
    static FaultSpec parse(const std::string &text);
};

/** One-shot channel outages collected for the current step. */
struct StepStalls {
    Tick promote = 0;
    Tick demote = 0;
};

class FaultInjector
{
  public:
    explicit FaultInjector(FaultSpec spec);

    /**
     * Fold the schedule up to @p step.  Must be called once per step,
     * at its start, before querying any of the accessors below.
     */
    void beginStep(int step);

    int currentStep() const { return step_; }

    /** True once any event's step has been reached. */
    bool anyActive() const { return any_active_; }

    // --- Persistent modifiers (folded over all live events) ------------

    /** Multiplier on the promote channel's profiled bandwidth. */
    double promoteBwScale() const { return promote_scale_; }
    /** Multiplier on the demote channel's profiled bandwidth. */
    double demoteBwScale() const { return demote_scale_; }
    /** Multiplier on the fast tier's configured capacity. */
    double fastCapacityScale() const { return capacityScale(0); }
    /** Multiplier on @p tier's configured capacity (1.0 if untouched). */
    double
    capacityScale(unsigned tier) const
    {
        return tier < kMaxFaultTiers ? capacity_scales_[tier] : 1.0;
    }
    /** Multiplier on every op's memory traffic (batch drift). */
    double trafficScale() const { return traffic_scale_; }

    // --- Per-step effects ------------------------------------------------

    /** Channel outages that begin exactly at the current step. */
    const StepStalls &stepStalls() const { return stalls_; }

    /**
     * Compute-time multiplier for @p layer at the current step.  A pure
     * hash of (seed, step, layer): query order cannot perturb it.
     */
    double computeScale(int layer) const;

    const FaultSpec &spec() const { return spec_; }

  private:
    FaultSpec spec_;
    int step_ = -1;
    bool any_active_ = false;
    double promote_scale_ = 1.0;
    double demote_scale_ = 1.0;
    double capacity_scales_[kMaxFaultTiers] = { 1.0, 1.0, 1.0, 1.0,
                                                1.0, 1.0, 1.0, 1.0 };
    double traffic_scale_ = 1.0;
    double jitter_amp_ = 0.0;
    StepStalls stalls_;
};

} // namespace sentinel::sim

#endif // SENTINEL_SIM_FAULT_INJECTOR_HH
