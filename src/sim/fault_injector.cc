#include "sim/fault_injector.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "common/logging.hh"

namespace sentinel::sim {

namespace {

/// splitmix64: tiny, well-mixed, and stateless — exactly what the
/// per-(seed, step, layer) jitter needs to stay order-independent.
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/// Uniform double in [0, 1) from a hashed key.
double
hash01(std::uint64_t seed, std::uint64_t a, std::uint64_t b)
{
    std::uint64_t h = mix64(seed ^ mix64(a ^ mix64(b)));
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::vector<std::string>
splitOn(const std::string &text, char sep)
{
    std::vector<std::string> out;
    std::string cur;
    std::istringstream is(text);
    while (std::getline(is, cur, sep))
        if (!cur.empty()) out.push_back(cur);
    return out;
}

ChannelSel
parseChannel(const std::string &v, const std::string &clause)
{
    if (v == "promote") return ChannelSel::Promote;
    if (v == "demote") return ChannelSel::Demote;
    if (v == "both") return ChannelSel::Both;
    SENTINEL_FATAL("chaos clause '%s': bad channel '%s' "
                   "(want promote|demote|both)",
                   clause.c_str(), v.c_str());
}

double
parseDouble(const std::string &v, const std::string &clause)
{
    char *end = nullptr;
    double d = std::strtod(v.c_str(), &end);
    if (end == v.c_str() || *end != '\0')
        SENTINEL_FATAL("chaos clause '%s': bad number '%s'", clause.c_str(),
                       v.c_str());
    return d;
}

} // namespace

FaultSpec
FaultSpec::parse(const std::string &text)
{
    FaultSpec spec;
    for (const std::string &clause : splitOn(text, ';')) {
        auto colon = clause.find(':');
        if (colon == std::string::npos)
            SENTINEL_FATAL("chaos clause '%s': want kind:key=val,...",
                           clause.c_str());
        std::string kind = clause.substr(0, colon);

        FaultEvent ev;
        bool have_step = false;
        if (kind == "bw") {
            ev.kind = FaultKind::BwDegrade;
        } else if (kind == "stall") {
            ev.kind = FaultKind::ChannelStall;
        } else if (kind == "shrink") {
            ev.kind = FaultKind::CapacityShrink;
        } else if (kind == "jitter") {
            ev.kind = FaultKind::ComputeJitter;
        } else if (kind == "drift") {
            ev.kind = FaultKind::TrafficDrift;
        } else {
            SENTINEL_FATAL("chaos clause '%s': unknown kind '%s' "
                           "(want bw|stall|shrink|jitter|drift)",
                           clause.c_str(), kind.c_str());
        }

        for (const std::string &kv : splitOn(clause.substr(colon + 1), ',')) {
            auto eq = kv.find('=');
            if (eq == std::string::npos)
                SENTINEL_FATAL("chaos clause '%s': bad key=val '%s'",
                               clause.c_str(), kv.c_str());
            std::string key = kv.substr(0, eq);
            std::string val = kv.substr(eq + 1);
            if (key == "step") {
                ev.step = static_cast<int>(parseDouble(val, clause));
                have_step = true;
            } else if (key == "factor") {
                ev.factor = parseDouble(val, clause);
            } else if (key == "amp") {
                ev.amplitude = parseDouble(val, clause);
            } else if (key == "ms") {
                ev.duration =
                    static_cast<Tick>(parseDouble(val, clause) * kMsec);
            } else if (key == "us") {
                ev.duration =
                    static_cast<Tick>(parseDouble(val, clause) * kUsec);
            } else if (key == "ch") {
                ev.channel = parseChannel(val, clause);
            } else if (key == "tier") {
                if (ev.kind != FaultKind::CapacityShrink)
                    SENTINEL_FATAL("chaos clause '%s': key 'tier' is only "
                                   "valid for shrink",
                                   clause.c_str());
                double t = parseDouble(val, clause);
                if (t < 0.0 || t >= static_cast<double>(kMaxFaultTiers))
                    SENTINEL_FATAL("chaos clause '%s': tier must be in "
                                   "[0, %u)",
                                   clause.c_str(), kMaxFaultTiers);
                ev.tier = static_cast<unsigned>(t);
            } else {
                SENTINEL_FATAL("chaos clause '%s': unknown key '%s'",
                               clause.c_str(), key.c_str());
            }
        }

        if (!have_step)
            SENTINEL_FATAL("chaos clause '%s': missing step=", clause.c_str());
        switch (ev.kind) {
        case FaultKind::BwDegrade:
        case FaultKind::CapacityShrink:
        case FaultKind::TrafficDrift:
            if (ev.factor <= 0.0)
                SENTINEL_FATAL("chaos clause '%s': factor must be > 0",
                               clause.c_str());
            break;
        case FaultKind::ChannelStall:
            if (ev.duration <= 0)
                SENTINEL_FATAL("chaos clause '%s': want ms= or us= > 0",
                               clause.c_str());
            break;
        case FaultKind::ComputeJitter:
            if (ev.amplitude <= 0.0 || ev.amplitude >= 1.0)
                SENTINEL_FATAL("chaos clause '%s': amp must be in (0, 1)",
                               clause.c_str());
            break;
        }
        spec.events.push_back(ev);
    }
    if (spec.events.empty())
        SENTINEL_FATAL("empty chaos spec '%s'", text.c_str());
    return spec;
}

FaultInjector::FaultInjector(FaultSpec spec) : spec_(std::move(spec)) {}

void
FaultInjector::beginStep(int step)
{
    step_ = step;
    any_active_ = false;
    promote_scale_ = 1.0;
    demote_scale_ = 1.0;
    for (double &s : capacity_scales_)
        s = 1.0;
    traffic_scale_ = 1.0;
    jitter_amp_ = 0.0;
    stalls_ = StepStalls{};

    // Re-fold from scratch every step: the accessors report *absolute*
    // scales relative to the profiled baseline, so repeated application
    // cannot compound.
    for (const FaultEvent &ev : spec_.events) {
        if (step < ev.step) continue;
        any_active_ = true;
        switch (ev.kind) {
        case FaultKind::BwDegrade:
            if (ev.channel != ChannelSel::Demote)
                promote_scale_ *= ev.factor;
            if (ev.channel != ChannelSel::Promote)
                demote_scale_ *= ev.factor;
            break;
        case FaultKind::ChannelStall:
            if (step == ev.step) {
                if (ev.channel != ChannelSel::Demote)
                    stalls_.promote = std::max(stalls_.promote, ev.duration);
                if (ev.channel != ChannelSel::Promote)
                    stalls_.demote = std::max(stalls_.demote, ev.duration);
            }
            break;
        case FaultKind::CapacityShrink:
            capacity_scales_[ev.tier] *= ev.factor;
            break;
        case FaultKind::ComputeJitter:
            jitter_amp_ = std::max(jitter_amp_, ev.amplitude);
            break;
        case FaultKind::TrafficDrift:
            traffic_scale_ *= ev.factor;
            break;
        }
    }
}

double
FaultInjector::computeScale(int layer) const
{
    if (jitter_amp_ <= 0.0) return 1.0;
    double u = hash01(spec_.seed, static_cast<std::uint64_t>(step_),
                      static_cast<std::uint64_t>(layer));
    return 1.0 + jitter_amp_ * (2.0 * u - 1.0);
}

} // namespace sentinel::sim
