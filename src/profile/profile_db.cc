#include "profile/profile_db.hh"

#include <algorithm>

#include "common/logging.hh"
#include "mem/page.hh"

namespace sentinel::prof {

ProfileDatabase::ProfileDatabase(std::string graph_name, int num_layers,
                                 std::size_t num_tensors)
    : graph_name_(std::move(graph_name)), num_layers_(num_layers)
{
    SENTINEL_ASSERT(num_layers_ > 0, "profile needs at least one layer");
    tensors_.resize(num_tensors);
    layers_.resize(static_cast<std::size_t>(num_layers_));
}

TensorProfile &
ProfileDatabase::mutableTensor(df::TensorId id)
{
    SENTINEL_ASSERT(id < tensors_.size(), "bad tensor id %u", id);
    return tensors_[id];
}

const TensorProfile &
ProfileDatabase::tensor(df::TensorId id) const
{
    SENTINEL_ASSERT(id < tensors_.size(), "bad tensor id %u", id);
    return tensors_[id];
}

LayerProfile &
ProfileDatabase::mutableLayer(int layer)
{
    SENTINEL_ASSERT(layer >= 0 && layer < num_layers_, "bad layer %d",
                    layer);
    return layers_[static_cast<std::size_t>(layer)];
}

const LayerProfile &
ProfileDatabase::layer(int layer) const
{
    SENTINEL_ASSERT(layer >= 0 && layer < num_layers_, "bad layer %d",
                    layer);
    return layers_[static_cast<std::size_t>(layer)];
}

Tick
ProfileDatabase::layerSpanTime(int begin, int end) const
{
    Tick total = 0;
    for (int l = std::max(0, begin); l < std::min(end, num_layers_); ++l)
        total += layers_[static_cast<std::size_t>(l)].duration;
    return total;
}

bool
ProfileDatabase::accessedIn(df::TensorId id, int begin, int end) const
{
    const TensorProfile &t = tensor(id);
    auto it = std::lower_bound(t.access_layers.begin(),
                               t.access_layers.end(), begin);
    return it != t.access_layers.end() && *it < end;
}

std::vector<df::TensorId>
ProfileDatabase::longLivedAccessedIn(int begin, int end) const
{
    std::vector<df::TensorId> out;
    for (const TensorProfile &t : tensors_) {
        if (t.short_lived)
            continue;
        if (accessedIn(t.id, begin, end))
            out.push_back(t.id);
    }
    std::sort(out.begin(), out.end(),
              [this](df::TensorId a, df::TensorId b) {
                  const auto &pa = tensors_[a];
                  const auto &pb = tensors_[b];
                  if (pa.accesses_per_page != pb.accesses_per_page)
                      return pa.accesses_per_page > pb.accesses_per_page;
                  return a < b; // deterministic tie-break
              });
    return out;
}

std::uint64_t
ProfileDatabase::longLivedBytesAccessedIn(int begin, int end) const
{
    std::uint64_t total = 0;
    for (const TensorProfile &t : tensors_) {
        if (!t.short_lived && accessedIn(t.id, begin, end))
            total += t.bytes;
    }
    return total;
}

std::uint64_t
ProfileDatabase::largestLongLivedBytes() const
{
    std::uint64_t largest = 0;
    for (const TensorProfile &t : tensors_)
        if (!t.short_lived)
            largest = std::max(largest, t.bytes);
    return largest;
}

} // namespace sentinel::prof
