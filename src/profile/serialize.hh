/**
 * @file
 * Profile persistence.
 *
 * Sentinel profiles a model once; the result is a property of the
 * (model, batch-bucket) pair, not of a process.  Persisting the
 * ProfileDatabase lets later training jobs (or offline planner
 * experiments, e.g. the Fig. 5 sweep) skip the instrumented step
 * entirely — the same reuse the paper leans on when it amortizes
 * profiling over millions of steps.
 *
 * The format is a versioned, line-oriented text file: stable across
 * platforms, diff-able, and deliberately simple to parse.
 */

#ifndef SENTINEL_PROFILE_SERIALIZE_HH
#define SENTINEL_PROFILE_SERIALIZE_HH

#include <iosfwd>
#include <string>

#include "profile/profile_db.hh"

namespace sentinel::prof {

/** Write @p db to @p os.  @return false on stream failure. */
bool saveProfile(const ProfileDatabase &db, std::ostream &os);

/** Write @p db to @p path (overwrites). */
bool saveProfile(const ProfileDatabase &db, const std::string &path);

/**
 * Read a profile previously written by saveProfile().
 *
 * Fatal on malformed input or version mismatch (a stale profile must
 * never silently drive migration of a different graph).
 */
ProfileDatabase loadProfile(std::istream &is);
ProfileDatabase loadProfile(const std::string &path);

} // namespace sentinel::prof

#endif // SENTINEL_PROFILE_SERIALIZE_HH
