#include "profile/profiler.hh"

#include <algorithm>
#include <unordered_map>

#include "alloc/arena.hh"
#include "common/logging.hh"
#include "mem/access_tracker.hh"

namespace sentinel::prof {

namespace {

/**
 * The profiling-phase allocator/policy: page-aligned, never recycles
 * addresses (so a page's counts belong to exactly one tensor), always
 * slow tier, and records per-layer timing.
 */
class ProfilingPolicy : public df::MemoryPolicy
{
  public:
    explicit ProfilingPolicy(ProfileDatabase &db)
        : db_(db), arena_(0)
    {
    }

    std::string name() const override { return "sentinel-profiler"; }

    df::AllocDecision
    allocate(df::Executor &ex, const df::TensorDesc &tensor) override
    {
        // One tensor per page: page alignment plus page-rounded size.
        mem::VirtAddr addr = arena_.allocate(tensor.pageAlignedBytes(),
                                             mem::kPageSize);
        return { addr, ex.hm().slowestTier() };
    }

    void
    onTensorAllocated(df::Executor &, df::TensorId id,
                      const df::TensorPlacement &pl) override
    {
        // Runtime-side record: the (de)allocation hook of Sec. III-A.
        placements_[id] = pl;
    }

    void
    onTensorFreed(df::Executor &, df::TensorId,
                  const df::TensorPlacement &) override
    {
        // Deliberately no arena_.free(): address recycling within the
        // profiling step would merge two tensors' page counts.
    }

    void
    onLayerBegin(df::Executor &ex, int) override
    {
        layer_start_ = ex.now();
        fault_at_start_ = ex.currentStats().fault_overhead;
        compute_at_start_ = ex.currentStats().compute_time;
        mem_at_start_ = ex.currentStats().mem_time;
    }

    void
    onLayerEnd(df::Executor &ex, int layer) override
    {
        LayerProfile &lp = db_.mutableLayer(layer);
        Tick fault_delta =
            ex.currentStats().fault_overhead - fault_at_start_;
        lp.duration = (ex.now() - layer_start_) - fault_delta;
        lp.compute = ex.currentStats().compute_time - compute_at_start_;
        lp.mem = ex.currentStats().mem_time - mem_at_start_;
    }

    const std::unordered_map<df::TensorId, df::TensorPlacement> &
    placements() const
    {
        return placements_;
    }

    std::uint64_t footprint() const { return arena_.highWater(); }

  private:
    ProfileDatabase &db_;
    alloc::VirtualArena arena_;
    std::unordered_map<df::TensorId, df::TensorPlacement> placements_;
    Tick layer_start_ = 0;
    Tick fault_at_start_ = 0;
    Tick compute_at_start_ = 0;
    Tick mem_at_start_ = 0;
};

/** Simple packed policy for the page-level profiling run. */
class PackedSlowPolicy : public df::MemoryPolicy
{
  public:
    PackedSlowPolicy() : arena_(0) {}
    std::string name() const override { return "packed-slow"; }

    df::AllocDecision
    allocate(df::Executor &ex, const df::TensorDesc &tensor) override
    {
        return { arena_.allocate(tensor.bytes, 64),
                 ex.hm().slowestTier() };
    }

    void
    onTensorFreed(df::Executor &, df::TensorId,
                  const df::TensorPlacement &pl) override
    {
        arena_.free(pl.addr, pl.bytes);
    }

  private:
    alloc::VirtualArena arena_;
};

/** Peak live footprint if every tensor were page-aligned/padded. */
std::uint64_t
pageAlignedPeak(const df::Graph &graph)
{
    std::uint64_t live = 0;
    for (df::TensorId id : graph.preallocatedTensors())
        live += graph.tensor(id).pageAlignedBytes();
    std::uint64_t peak = live;
    for (const auto &op : graph.ops()) {
        for (df::TensorId id : graph.tensorsBornAtOp(op.id))
            live += graph.tensor(id).pageAlignedBytes();
        peak = std::max(peak, live);
        for (df::TensorId id : graph.tensorsDyingAtOp(op.id))
            live -= graph.tensor(id).pageAlignedBytes();
    }
    return peak;
}

} // namespace

ProfileResult
Profiler::profile(const df::Graph &graph, mem::HeterogeneousMemory &hm,
                  const df::ExecParams &params)
{
    ProfileResult result{
        ProfileDatabase(graph.name(), graph.numLayers(),
                        graph.numTensors()),
        {}, 0, 0, 0
    };
    ProfileDatabase &db = result.db;

    ProfilingPolicy policy(db);
    df::Executor ex(graph, hm, params, policy);
    mem::AccessTracker tracker(opts_.fault_cost);
    // The profiling layout never recycles addresses, so the tracker
    // will see every tensor's page-aligned footprint exactly once.
    std::size_t est_pages = 0;
    for (const auto &t : graph.tensors())
        est_pages += t.pageAlignedBytes() / mem::kPageSize;
    tracker.reserve(est_pages);
    ex.setAccessTracker(&tracker);
    ex.setTelemetry(telemetry_);

    result.profiling_step = ex.runStep();

    // --- OS + runtime coordination: page counts -> tensor profiles ----
    std::uint64_t sl_live = 0;
    std::uint64_t sl_peak = 0;
    // Recompute short-lived peak over the op walk (runtime-side info).
    for (const auto &op : graph.ops()) {
        for (df::TensorId id : graph.tensorsBornAtOp(op.id))
            if (graph.tensor(id).shortLived())
                sl_live += graph.tensor(id).pageAlignedBytes();
        sl_peak = std::max(sl_peak, sl_live);
        for (df::TensorId id : graph.tensorsDyingAtOp(op.id))
            if (graph.tensor(id).shortLived())
                sl_live -= graph.tensor(id).pageAlignedBytes();
    }
    db.setShortLivedPeakBytes(sl_peak);

    for (const auto &t : graph.tensors()) {
        TensorProfile &p = db.mutableTensor(t.id);
        p.id = t.id;
        p.bytes = t.bytes;
        p.kind = t.kind;
        p.preallocated = t.preallocated;
        p.first_layer = t.preallocated ? 0 : t.first_layer;
        p.last_layer =
            t.preallocated ? graph.numLayers() - 1 : t.last_layer;
        p.short_lived = t.shortLived();
        p.small = t.small();

        auto it = policy.placements().find(t.id);
        SENTINEL_ASSERT(it != policy.placements().end(),
                        "tensor '%s' was never allocated during profiling",
                        t.name.c_str());
        const df::TensorPlacement &pl = it->second;
        std::uint64_t total = 0;
        for (mem::PageId pg = pl.firstPage(); pg < pl.endPage(); ++pg)
            total += tracker.counts(pg).total();
        p.total_accesses = total;
        p.accesses_per_page =
            static_cast<double>(total) /
            static_cast<double>(std::max<std::uint64_t>(1, pl.numPages()));
    }

    // Layer association comes from the runtime side (which ops in which
    // layer touched which tensor) — the "semantic bridge".
    for (const auto &op : graph.ops()) {
        for (const auto &use : op.uses) {
            auto &layers = db.mutableTensor(use.tensor).access_layers;
            if (layers.empty() || layers.back() != op.layer)
                layers.push_back(op.layer);
        }
    }

    result.page_aligned_peak = pageAlignedPeak(graph);
    result.packed_peak = graph.peakMemoryBytes();

    if (opts_.gpu_pinned) {
        // Two copies of each preallocated tensor are kept during GPU
        // profiling (pinned host copy + device copy); synchronizing
        // them afterwards moves the preallocated bytes once over the
        // link (Sec. V).
        result.sync_overhead =
            transferTime(graph.preallocatedBytes(), opts_.gpu_link_bw);
        result.profiling_step.step_time += result.sync_overhead;
    }

    return result;
}

std::vector<PageLevelEntry>
Profiler::profilePageLevel(const df::Graph &graph,
                           mem::HeterogeneousMemory &hm,
                           const df::ExecParams &params)
{
    PackedSlowPolicy policy;
    df::Executor ex(graph, hm, params, policy);
    mem::AccessTracker tracker(opts_.fault_cost);
    tracker.reserve(graph.peakMemoryBytes() / mem::kPageSize);
    ex.setAccessTracker(&tracker);
    ex.setTelemetry(telemetry_);
    ex.runStep();

    std::vector<PageLevelEntry> out;
    out.reserve(tracker.allCounts().size());
    for (const auto &kv : tracker.allCounts()) {
        // Pages tracked but never observed carry no profile signal.
        if (kv.second.counts.total() > 0)
            out.push_back(PageLevelEntry{ kv.second.counts.total() });
    }
    return out;
}

} // namespace sentinel::prof
