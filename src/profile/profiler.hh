/**
 * @file
 * The dynamic profiler: one training step, tensor-level counts.
 *
 * Reproduces Sec. III-A / Sec. VI of the paper:
 *
 *  - the profiling step runs with a page-aligned allocator (one tensor
 *    per page) entirely out of slow memory, with every page poisoned,
 *    so OS page-access counts map 1:1 to tensors;
 *  - the runtime side records allocation/free and layer boundaries,
 *    yielding size + lifetime + layer association;
 *  - fault servicing makes the profiling step several times slower
 *    (amortized over millions of steps, Sec. VII-B);
 *  - page alignment inflates the footprint only during this step
 *    (memory overhead, Table III);
 *  - in GPU mode, profiling runs through customized pinned host
 *    memory and pays a one-time two-copy synchronization (Sec. V).
 *
 * A second entry point profiles at *page* level with the normal packed
 * allocator — the misleading view Observation 3 warns about; the
 * characterization bench contrasts the two.
 */

#ifndef SENTINEL_PROFILE_PROFILER_HH
#define SENTINEL_PROFILE_PROFILER_HH

#include <cstdint>
#include <vector>

#include "dataflow/executor.hh"
#include "mem/hm.hh"
#include "profile/profile_db.hh"

namespace sentinel::prof {

struct ProfilerOptions {
    /** Cost of one protection fault + PTE poison + TLB flush. */
    Tick fault_cost = 2 * kUsec;

    /** GPU mode: profile through customized pinned host memory. */
    bool gpu_pinned = false;

    /** Link bandwidth used for the GPU two-copy synchronization. */
    double gpu_link_bw = 12e9;
};

struct ProfileResult {
    ProfileDatabase db;

    /** Stats of the profiling step itself (slower than steady state). */
    df::StepStats profiling_step;

    /** GPU two-copy synchronization overhead (0 in CPU mode). */
    Tick sync_overhead = 0;

    /** Peak footprint under one-tensor-per-page allocation. */
    std::uint64_t page_aligned_peak = 0;

    /** Peak footprint under the normal packed allocation. */
    std::uint64_t packed_peak = 0;

    /** Profiling-phase memory overhead (Table III: a few percent). */
    double
    memoryOverhead() const
    {
        if (packed_peak == 0)
            return 0.0;
        return static_cast<double>(page_aligned_peak) /
                   static_cast<double>(packed_peak) -
               1.0;
    }

    /** Slowdown of the profiling step vs. a fault-free step. */
    double
    profilingSlowdown() const
    {
        Tick clean = profiling_step.step_time -
                     profiling_step.fault_overhead - sync_overhead;
        if (clean <= 0)
            return 1.0;
        return static_cast<double>(profiling_step.step_time) /
               static_cast<double>(clean);
    }
};

/** One page's counts under page-level (packed) profiling. */
struct PageLevelEntry {
    std::uint64_t accesses = 0;
};

class Profiler
{
  public:
    explicit Profiler(ProfilerOptions opts = {}) : opts_(opts) {}

    /**
     * Attach a telemetry session (null detaches): the profiling step's
     * executor then emits op spans and one ProfilingFault event per
     * serviced poisoned-PTE fault, making the profiling phase itself
     * inspectable in the exported trace.
     */
    void setTelemetry(telemetry::Session *session) { telemetry_ = session; }

    /**
     * Run the one-step tensor-level profiling of @p graph against a
     * fresh slow-memory-backed executor on @p hm.
     */
    ProfileResult profile(const df::Graph &graph,
                          mem::HeterogeneousMemory &hm,
                          const df::ExecParams &params);

    /**
     * Page-level profiling with the normal packed allocator: returns
     * the access count of every page touched during one step.  This
     * is the traditional (misleading) view of Observation 3.
     */
    std::vector<PageLevelEntry> profilePageLevel(
        const df::Graph &graph, mem::HeterogeneousMemory &hm,
        const df::ExecParams &params);

  private:
    ProfilerOptions opts_;
    telemetry::Session *telemetry_ = nullptr;
};

} // namespace sentinel::prof

#endif // SENTINEL_PROFILE_PROFILER_HH
