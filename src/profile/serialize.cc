#include "profile/serialize.hh"

#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace sentinel::prof {

namespace {

constexpr const char *kMagic = "sentinel-profile";
constexpr int kVersion = 1;

} // namespace

bool
saveProfile(const ProfileDatabase &db, std::ostream &os)
{
    os << kMagic << " " << kVersion << "\n";
    os << "graph " << db.graphName() << "\n";
    os << "layers " << db.numLayers() << "\n";
    os << "tensors " << db.numTensors() << "\n";
    os << "sl_peak " << db.shortLivedPeakBytes() << "\n";

    for (int l = 0; l < db.numLayers(); ++l) {
        const LayerProfile &lp = db.layer(l);
        os << "L " << l << " " << lp.duration << " " << lp.compute << " "
           << lp.mem << "\n";
    }
    for (const TensorProfile &t : db.tensors()) {
        os << "T " << t.id << " " << t.bytes << " "
           << static_cast<int>(t.kind) << " " << (t.preallocated ? 1 : 0)
           << " " << t.first_layer << " " << t.last_layer << " "
           << (t.short_lived ? 1 : 0) << " " << (t.small ? 1 : 0) << " "
           << t.total_accesses << " " << t.accesses_per_page << " "
           << t.access_layers.size();
        for (int a : t.access_layers)
            os << " " << a;
        os << "\n";
    }
    os << "end\n";
    return static_cast<bool>(os);
}

bool
saveProfile(const ProfileDatabase &db, const std::string &path)
{
    std::ofstream os(path);
    return os && saveProfile(db, os);
}

ProfileDatabase
loadProfile(std::istream &is)
{
    std::string magic;
    int version = 0;
    is >> magic >> version;
    if (magic != kMagic)
        SENTINEL_FATAL("not a sentinel profile (magic '%s')",
                       magic.c_str());
    if (version != kVersion)
        SENTINEL_FATAL("profile version %d, expected %d", version,
                       kVersion);

    std::string key;
    std::string graph_name;
    int layers = 0;
    std::size_t tensors = 0;
    std::uint64_t sl_peak = 0;
    is >> key >> graph_name;
    SENTINEL_ASSERT(key == "graph", "malformed profile: missing graph");
    is >> key >> layers;
    SENTINEL_ASSERT(key == "layers" && layers > 0,
                    "malformed profile: missing layers");
    is >> key >> tensors;
    SENTINEL_ASSERT(key == "tensors", "malformed profile: missing "
                                      "tensors");
    is >> key >> sl_peak;
    SENTINEL_ASSERT(key == "sl_peak", "malformed profile: missing "
                                      "sl_peak");

    ProfileDatabase db(graph_name, layers, tensors);
    db.setShortLivedPeakBytes(sl_peak);

    while (is >> key) {
        if (key == "end")
            break;
        if (key == "L") {
            int l = 0;
            is >> l;
            SENTINEL_ASSERT(l >= 0 && l < layers,
                            "profile layer %d out of range", l);
            LayerProfile &lp = db.mutableLayer(l);
            is >> lp.duration >> lp.compute >> lp.mem;
        } else if (key == "T") {
            df::TensorId id = 0;
            is >> id;
            SENTINEL_ASSERT(id < tensors, "profile tensor %u out of "
                                          "range",
                            id);
            TensorProfile &t = db.mutableTensor(id);
            t.id = id;
            int kind = 0;
            int prealloc = 0;
            int short_lived = 0;
            int small = 0;
            std::size_t n = 0;
            is >> t.bytes >> kind >> prealloc >> t.first_layer >>
                t.last_layer >> short_lived >> small >>
                t.total_accesses >> t.accesses_per_page >> n;
            t.kind = static_cast<df::TensorKind>(kind);
            t.preallocated = prealloc != 0;
            t.short_lived = short_lived != 0;
            t.small = small != 0;
            t.access_layers.resize(n);
            for (std::size_t i = 0; i < n; ++i)
                is >> t.access_layers[i];
        } else {
            SENTINEL_FATAL("malformed profile: unexpected record '%s'",
                           key.c_str());
        }
    }
    SENTINEL_ASSERT(key == "end", "truncated profile (no end marker)");
    return db;
}

ProfileDatabase
loadProfile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        SENTINEL_FATAL("cannot open profile '%s'", path.c_str());
    return loadProfile(is);
}

} // namespace sentinel::prof
