/**
 * @file
 * The profile database: what one profiling step learns.
 *
 * Sentinel's profiling step produces, per tensor: size, lifetime (in
 * layers), and the number of main-memory accesses (Sec. III-A).  The
 * OS side contributes page access counts (PTE poisoning); the runtime
 * side contributes (de)allocation events and layer association.
 * Because the profiling allocator is page-aligned (one tensor per
 * page), page counts *are* tensor counts — that is the coordination
 * that bridges the OS/application semantic gap.
 *
 * The database also stores per-layer timing, which the interval
 * planner uses to evaluate Eq. 2 without running extra steps.
 */

#ifndef SENTINEL_PROFILE_PROFILE_DB_HH
#define SENTINEL_PROFILE_PROFILE_DB_HH

#include <cstdint>
#include <vector>

#include "common/units.hh"
#include "dataflow/graph.hh"

namespace sentinel::prof {

/** Everything the profiling step learned about one tensor. */
struct TensorProfile {
    df::TensorId id = df::kInvalidTensor;
    std::uint64_t bytes = 0;
    df::TensorKind kind = df::TensorKind::Temp;
    bool preallocated = false;

    int first_layer = -1;
    int last_layer = -1;
    bool short_lived = false;
    bool small = false;

    /** Total counted main-memory access episodes (all pages summed). */
    std::uint64_t total_accesses = 0;

    /** Hotness: counted episodes per page — the migration sort key. */
    double accesses_per_page = 0.0;

    /** Distinct layers in which the tensor is accessed, sorted. */
    std::vector<int> access_layers;

    int lifetimeLayers() const { return last_layer - first_layer + 1; }
};

/** Per-layer timing from the profiling step (fault overhead removed). */
struct LayerProfile {
    Tick duration = 0; ///< wall time of the layer (minus fault overhead)
    Tick compute = 0;  ///< compute component
    Tick mem = 0;      ///< memory component, measured on the slow tier
};

class ProfileDatabase
{
  public:
    ProfileDatabase(std::string graph_name, int num_layers,
                    std::size_t num_tensors);

    const std::string &graphName() const { return graph_name_; }
    int numLayers() const { return num_layers_; }
    std::size_t numTensors() const { return tensors_.size(); }

    TensorProfile &mutableTensor(df::TensorId id);
    const TensorProfile &tensor(df::TensorId id) const;
    const std::vector<TensorProfile> &tensors() const { return tensors_; }

    LayerProfile &mutableLayer(int layer);
    const LayerProfile &layer(int layer) const;

    // --- Aggregates for the planner and the characterization study ------

    /**
     * RS: peak concurrent footprint of short-lived tensors in any
     * single layer, rounded up to pages.  Short-lived tensors never
     * span layers, so the per-interval peak equals the per-layer peak
     * and is (as the paper observes) essentially independent of the
     * migration interval length.  Set by the profiler.
     */
    std::uint64_t shortLivedPeakBytes() const { return sl_peak_bytes_; }
    void setShortLivedPeakBytes(std::uint64_t b) { sl_peak_bytes_ = b; }

    /** Sum of per-layer durations over [begin, end). */
    Tick layerSpanTime(int begin, int end) const;

    /**
     * Long-lived tensors with at least one access in [begin, end),
     * sorted by accesses_per_page descending — the migration order
     * of Sec. IV-D.
     */
    std::vector<df::TensorId> longLivedAccessedIn(int begin, int end) const;

    /** Total bytes of the tensors returned by longLivedAccessedIn. */
    std::uint64_t longLivedBytesAccessedIn(int begin, int end) const;

    /** True if @p tensor has any access in [begin, end). */
    bool accessedIn(df::TensorId tensor, int begin, int end) const;

    /** Largest long-lived tensor in bytes (fast-memory lower bound). */
    std::uint64_t largestLongLivedBytes() const;

  private:
    std::string graph_name_;
    int num_layers_;
    std::vector<TensorProfile> tensors_;
    std::vector<LayerProfile> layers_;
    std::uint64_t sl_peak_bytes_ = 0;
};

} // namespace sentinel::prof

#endif // SENTINEL_PROFILE_PROFILE_DB_HH
